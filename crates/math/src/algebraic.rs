//! Exact algebraic representation of the complex amplitudes that arise in
//! Clifford+T (and Toffoli+Hadamard) quantum circuits.
//!
//! Following the paper (Eq. 5), every representable amplitude is written as
//!
//! ```text
//! α = (a·ω³ + b·ω² + c·ω + d) / √2ᵏ      with ω = e^{iπ/4}
//! ```
//!
//! where `a, b, c, d, k` are integers.  The set of such numbers is closed
//! under addition, multiplication and under every entry of the gate matrices
//! in Table I of the paper, so a simulation that starts from an exactly
//! representable state never loses precision.

use crate::complex::Complex;
use crate::sqrt2::Sqrt2Int;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An exact amplitude `(a·ω³ + b·ω² + c·ω + d) / √2ᵏ` with `ω = e^{iπ/4}`.
///
/// ```
/// use sliq_math::Algebraic;
/// // (1/√2)·(|0⟩ + |1⟩) amplitudes produced by a Hadamard gate:
/// let amp = Algebraic::one().div_sqrt2();
/// assert!((amp.to_complex().re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Algebraic {
    /// Coefficient of ω³.
    pub a: i64,
    /// Coefficient of ω².
    pub b: i64,
    /// Coefficient of ω.
    pub c: i64,
    /// Constant coefficient.
    pub d: i64,
    /// The √2 denominator exponent.
    pub k: i32,
}

impl Algebraic {
    /// Creates an amplitude from its raw coefficients.
    pub const fn new(a: i64, b: i64, c: i64, d: i64, k: i32) -> Self {
        Self { a, b, c, d, k }
    }

    /// The value `0`.
    pub const fn zero() -> Self {
        Self::new(0, 0, 0, 0, 0)
    }

    /// The value `1`.
    pub const fn one() -> Self {
        Self::new(0, 0, 0, 1, 0)
    }

    /// The imaginary unit `i = ω²`.
    pub const fn i() -> Self {
        Self::new(0, 1, 0, 0, 0)
    }

    /// The primitive eighth root of unity `ω = e^{iπ/4}`.
    pub const fn omega() -> Self {
        Self::new(0, 0, 1, 0, 0)
    }

    /// An integer constant.
    pub const fn from_int(value: i64) -> Self {
        Self::new(0, 0, 0, value, 0)
    }

    /// Returns `true` when the value is exactly zero (independently of `k`).
    pub fn is_zero(&self) -> bool {
        self.a == 0 && self.b == 0 && self.c == 0 && self.d == 0
    }

    /// Multiplies by ω (a 45° phase rotation).
    ///
    /// Using `ω⁴ = −1`: `(aω³+bω²+cω+d)·ω = bω³ + cω² + dω − a`.
    pub fn mul_omega(&self) -> Self {
        Self::new(self.b, self.c, self.d, -self.a, self.k)
    }

    /// Multiplies by `ω^p` for any integer power `p` (negative allowed).
    pub fn mul_omega_pow(&self, p: i32) -> Self {
        let mut r = *self;
        for _ in 0..p.rem_euclid(8) {
            r = r.mul_omega();
        }
        r
    }

    /// Multiplies the numerator by √2 without changing `k`.
    ///
    /// Uses the identity `√2 = ω − ω³`.
    pub fn mul_sqrt2_numerator(&self) -> Self {
        Self::new(
            self.b - self.d,
            self.a + self.c,
            self.b + self.d,
            self.c - self.a,
            self.k,
        )
    }

    /// Divides the value by √2 (increments the denominator exponent).
    pub fn div_sqrt2(&self) -> Self {
        Self::new(self.a, self.b, self.c, self.d, self.k + 1)
    }

    /// Multiplies the value by √2 (decrements the denominator exponent).
    pub fn mul_sqrt2(&self) -> Self {
        Self::new(self.a, self.b, self.c, self.d, self.k - 1)
    }

    /// Rewrites the value with denominator exponent `k_target ≥ self.k`
    /// without changing the represented number.
    pub fn with_k(&self, k_target: i32) -> Self {
        assert!(
            k_target >= self.k,
            "cannot lower the denominator exponent without dividing the numerator"
        );
        let mut r = *self;
        while r.k < k_target {
            r = r.mul_sqrt2_numerator();
            r.k += 1;
        }
        r
    }

    /// Returns the canonical reduced form: removes common √2 factors between
    /// the numerator and the denominator while `k > 0`, and maps every
    /// representation of zero to [`Algebraic::zero`].
    pub fn reduced(&self) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let mut r = *self;
        while r.k > 0 {
            // Dividing the numerator by √2 requires (b−d, a+c, b+d, c−a) to be
            // even, i.e. a ≡ c and b ≡ d (mod 2).
            if (r.a - r.c) % 2 == 0 && (r.b - r.d) % 2 == 0 {
                let (a, b, c, d) = (r.a, r.b, r.c, r.d);
                r = Self::new((b - d) / 2, (a + c) / 2, (b + d) / 2, (c - a) / 2, r.k - 1);
            } else {
                break;
            }
        }
        r
    }

    /// Exact equality of the represented complex numbers (representation
    /// independent, unlike `==` which compares coefficients).
    pub fn value_eq(&self, other: &Self) -> bool {
        (*self - *other).is_zero()
    }

    /// The exact squared magnitude, returned as `(x + y·√2) / 2ᵏ` with the
    /// integer pair `(x, y)` in a [`Sqrt2Int`] and the exponent `k`.
    ///
    /// Derivation: with ω = (1+i)/√2,
    /// `|aω³+bω²+cω+d|² = (a²+b²+c²+d²) + √2·(ab + bc + cd − ad)`.
    pub fn norm_sqr_exact(&self) -> (Sqrt2Int, i32) {
        let (a, b, c, d) = (
            self.a as i128,
            self.b as i128,
            self.c as i128,
            self.d as i128,
        );
        let int = a * a + b * b + c * c + d * d;
        let sqrt2 = a * b + b * c + c * d - a * d;
        (Sqrt2Int::new(int, sqrt2), self.k)
    }

    /// The squared magnitude as a floating point number.
    pub fn norm_sqr(&self) -> f64 {
        let (v, k) = self.norm_sqr_exact();
        v.to_f64() / 2f64.powi(k)
    }

    /// Converts to a floating point [`Complex`] (the only lossy operation).
    pub fn to_complex(&self) -> Complex {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        // ω = s + s·i, ω² = i, ω³ = −s + s·i.
        let re = -self.a as f64 * s + self.c as f64 * s + self.d as f64;
        let im = self.a as f64 * s + self.b as f64 + self.c as f64 * s;
        let scale = 2f64.powf(-(self.k as f64) / 2.0);
        Complex::new(re * scale, im * scale)
    }

    /// The complex conjugate.
    pub fn conj(&self) -> Self {
        // conj(ω) = ω⁻¹ = −ω³, conj(ω²) = −ω², conj(ω³) = −ω.
        Self::new(-self.c, -self.b, -self.a, self.d, self.k)
    }
}

impl Default for Algebraic {
    fn default() -> Self {
        Self::zero()
    }
}

impl Add for Algebraic {
    type Output = Algebraic;
    fn add(self, rhs: Algebraic) -> Algebraic {
        let k = self.k.max(rhs.k);
        let x = self.with_k(k);
        let y = rhs.with_k(k);
        Algebraic::new(x.a + y.a, x.b + y.b, x.c + y.c, x.d + y.d, k)
    }
}

impl Sub for Algebraic {
    type Output = Algebraic;
    fn sub(self, rhs: Algebraic) -> Algebraic {
        self + (-rhs)
    }
}

impl Neg for Algebraic {
    type Output = Algebraic;
    fn neg(self) -> Algebraic {
        Algebraic::new(-self.a, -self.b, -self.c, -self.d, self.k)
    }
}

impl Mul for Algebraic {
    type Output = Algebraic;
    fn mul(self, rhs: Algebraic) -> Algebraic {
        // Polynomial product in ω, reduced with ω⁴ = −1.
        // Index coefficients as c[0]=d (ω⁰) .. c[3]=a (ω³).
        let x = [self.d, self.c, self.b, self.a];
        let y = [rhs.d, rhs.c, rhs.b, rhs.a];
        let mut out = [0i64; 4];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0 {
                continue;
            }
            for (j, &yj) in y.iter().enumerate() {
                if yj == 0 {
                    continue;
                }
                let p = i + j;
                let term = xi * yj;
                if p < 4 {
                    out[p] += term;
                } else {
                    out[p - 4] -= term; // ω⁴ = −1
                }
            }
        }
        Algebraic::new(out[3], out[2], out[1], out[0], self.k + rhs.k)
    }
}

impl fmt::Display for Algebraic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}ω³ + {}ω² + {}ω + {}) / √2^{}",
            self.a, self.b, self.c, self.d, self.k
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(x: Complex, y: Complex) {
        assert!(x.approx_eq(&y, 1e-9), "{x} != {y}");
    }

    #[test]
    fn constants_match_float_values() {
        assert_close(Algebraic::zero().to_complex(), Complex::zero());
        assert_close(Algebraic::one().to_complex(), Complex::one());
        assert_close(Algebraic::i().to_complex(), Complex::i());
        assert_close(
            Algebraic::omega().to_complex(),
            Complex::from_polar(1.0, std::f64::consts::FRAC_PI_4),
        );
    }

    #[test]
    fn omega_has_order_eight() {
        let mut x = Algebraic::one();
        for _ in 0..8 {
            x = x.mul_omega();
        }
        assert_eq!(x, Algebraic::one());
        let mut y = Algebraic::one();
        for _ in 0..4 {
            y = y.mul_omega();
        }
        assert_eq!(y, -Algebraic::one());
    }

    #[test]
    fn sqrt2_numerator_identity() {
        // (x·√2)/√2 == x after raising k.
        let x = Algebraic::new(3, -2, 5, 7, 0);
        let y = x.mul_sqrt2_numerator().div_sqrt2();
        assert_close(x.to_complex(), y.to_complex());
        assert!(x.value_eq(&y.reduced()) || x.value_eq(&y));
    }

    #[test]
    fn addition_aligns_denominators() {
        let h = Algebraic::one().div_sqrt2(); // 1/√2
        let sum = h + h; // 2/√2 = √2
        assert_close(
            sum.to_complex(),
            Complex::new(std::f64::consts::SQRT_2, 0.0),
        );
        let reduced = sum.reduced();
        assert_eq!(reduced.k, 0);
        assert_close(reduced.to_complex(), sum.to_complex());
    }

    #[test]
    fn multiplication_matches_floating_point() {
        let x = Algebraic::new(1, -2, 3, 4, 1);
        let y = Algebraic::new(-2, 0, 5, 1, 2);
        assert_close((x * y).to_complex(), x.to_complex() * y.to_complex());
    }

    #[test]
    fn conjugate_matches_floating_point() {
        let x = Algebraic::new(2, -1, 4, -3, 3);
        assert_close(x.conj().to_complex(), x.to_complex().conj());
    }

    #[test]
    fn norm_sqr_exact_matches_float() {
        let x = Algebraic::new(1, 1, -2, 3, 2);
        let expected = x.to_complex().norm_sqr();
        assert!((x.norm_sqr() - expected).abs() < 1e-9);
        // |x|² must also equal x · conj(x).
        let prod = x * x.conj();
        assert!(prod.to_complex().im.abs() < 1e-9);
        assert!((prod.to_complex().re - expected).abs() < 1e-9);
    }

    #[test]
    fn reduction_is_value_preserving() {
        let x = Algebraic::new(2, 2, 2, 2, 4);
        let r = x.reduced();
        assert!(r.k < x.k);
        assert_close(x.to_complex(), r.to_complex());
    }

    #[test]
    fn zero_reduces_to_canonical_zero() {
        let z = Algebraic::new(0, 0, 0, 0, 17);
        assert_eq!(z.reduced(), Algebraic::zero());
        assert!(z.is_zero());
    }

    #[test]
    fn value_eq_ignores_representation() {
        let one_a = Algebraic::one();
        let one_b = Algebraic::new(-1, 0, 1, 0, 1); // (ω − ω³)/√2 = √2/√2 = 1
        assert!(one_a.value_eq(&one_b));
        assert_ne!(one_a, one_b);
    }
}
