//! Floating-point matrices of the supported single-qubit gates.

use sliq_math::Complex;

/// A 2×2 complex matrix in row-major order: `[[m00, m01], [m10, m11]]`.
pub type Matrix2 = [[Complex; 2]; 2];

const S2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Pauli-X.
pub fn x() -> Matrix2 {
    [
        [Complex::zero(), Complex::one()],
        [Complex::one(), Complex::zero()],
    ]
}

/// Pauli-Y.
pub fn y() -> Matrix2 {
    [
        [Complex::zero(), Complex::new(0.0, -1.0)],
        [Complex::i(), Complex::zero()],
    ]
}

/// Pauli-Z.
pub fn z() -> Matrix2 {
    [
        [Complex::one(), Complex::zero()],
        [Complex::zero(), Complex::new(-1.0, 0.0)],
    ]
}

/// Hadamard.
pub fn h() -> Matrix2 {
    [
        [Complex::new(S2, 0.0), Complex::new(S2, 0.0)],
        [Complex::new(S2, 0.0), Complex::new(-S2, 0.0)],
    ]
}

/// Phase gate S.
pub fn s() -> Matrix2 {
    [
        [Complex::one(), Complex::zero()],
        [Complex::zero(), Complex::i()],
    ]
}

/// Inverse phase gate S†.
pub fn sdg() -> Matrix2 {
    [
        [Complex::one(), Complex::zero()],
        [Complex::zero(), Complex::new(0.0, -1.0)],
    ]
}

/// T gate.
pub fn t() -> Matrix2 {
    [
        [Complex::one(), Complex::zero()],
        [
            Complex::zero(),
            Complex::from_polar(1.0, std::f64::consts::FRAC_PI_4),
        ],
    ]
}

/// Inverse T gate T†.
pub fn tdg() -> Matrix2 {
    [
        [Complex::one(), Complex::zero()],
        [
            Complex::zero(),
            Complex::from_polar(1.0, -std::f64::consts::FRAC_PI_4),
        ],
    ]
}

/// `Rx(π/2)`.
pub fn rx_pi2() -> Matrix2 {
    [
        [Complex::new(S2, 0.0), Complex::new(0.0, -S2)],
        [Complex::new(0.0, -S2), Complex::new(S2, 0.0)],
    ]
}

/// `Ry(π/2)`.
pub fn ry_pi2() -> Matrix2 {
    [
        [Complex::new(S2, 0.0), Complex::new(-S2, 0.0)],
        [Complex::new(S2, 0.0), Complex::new(S2, 0.0)],
    ]
}

/// Returns `true` if `m` is unitary to within `eps`.
pub fn is_unitary(m: &Matrix2, eps: f64) -> bool {
    // Rows of a unitary matrix are orthonormal.
    let dot = |a: &[Complex; 2], b: &[Complex; 2]| a[0] * b[0].conj() + a[1] * b[1].conj();
    dot(&m[0], &m[0]).approx_eq(&Complex::one(), eps)
        && dot(&m[1], &m[1]).approx_eq(&Complex::one(), eps)
        && dot(&m[0], &m[1]).approx_eq(&Complex::zero(), eps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_gates_are_unitary() {
        for (name, m) in [
            ("x", x()),
            ("y", y()),
            ("z", z()),
            ("h", h()),
            ("s", s()),
            ("sdg", sdg()),
            ("t", t()),
            ("tdg", tdg()),
            ("rx_pi2", rx_pi2()),
            ("ry_pi2", ry_pi2()),
        ] {
            assert!(is_unitary(&m, 1e-12), "{name} is not unitary");
        }
    }

    #[test]
    fn t_squared_is_s_and_s_squared_is_z() {
        let mul = |a: Matrix2, b: Matrix2| {
            let mut out = [[Complex::zero(); 2]; 2];
            for i in 0..2 {
                for j in 0..2 {
                    out[i][j] = a[i][0] * b[0][j] + a[i][1] * b[1][j];
                }
            }
            out
        };
        let tt = mul(t(), t());
        let ss = mul(s(), s());
        for (i, (tt_row, ss_row)) in tt.iter().zip(ss.iter()).enumerate() {
            for j in 0..2 {
                assert!(tt_row[j].approx_eq(&s()[i][j], 1e-12));
                assert!(ss_row[j].approx_eq(&z()[i][j], 1e-12));
            }
        }
    }

    #[test]
    fn daggers_invert() {
        let mul = |a: Matrix2, b: Matrix2| {
            let mut out = [[Complex::zero(); 2]; 2];
            for i in 0..2 {
                for j in 0..2 {
                    out[i][j] = a[i][0] * b[0][j] + a[i][1] * b[1][j];
                }
            }
            out
        };
        for (a, b) in [(s(), sdg()), (t(), tdg())] {
            let p = mul(a, b);
            assert!(p[0][0].approx_eq(&Complex::one(), 1e-12));
            assert!(p[1][1].approx_eq(&Complex::one(), 1e-12));
            assert!(p[0][1].approx_eq(&Complex::zero(), 1e-12));
            assert!(p[1][0].approx_eq(&Complex::zero(), 1e-12));
        }
    }
}
