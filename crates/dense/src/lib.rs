//! # sliq-dense
//!
//! An array-based state-vector simulator — the "array-based" baseline family
//! from the paper's related-work discussion and the ground-truth oracle used
//! by the test suites of the symbolic backends.
//!
//! The state vector is stored explicitly (`2ⁿ` complex amplitudes), so the
//! backend is capped at [`MAX_DENSE_QUBITS`] qubits; within that range it
//! supports the full gate set of Table I plus the S†/T† extensions.
//!
//! ```
//! use sliq_circuit::{Circuit, Simulator};
//! use sliq_dense::DenseSimulator;
//! let mut c = Circuit::new(1);
//! c.h(0).t(0).h(0);
//! let mut sim = DenseSimulator::new(1);
//! sim.run(&c)?;
//! assert!((sim.total_probability() - 1.0).abs() < 1e-12);
//! # Ok::<(), sliq_circuit::SimulationError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matrices;
mod simulator;

pub use simulator::{DenseSimulator, MAX_DENSE_QUBITS};
