//! The array-based state-vector simulator.

use crate::matrices::{self, Matrix2};
use sliq_circuit::{Gate, SimulationError, Simulator};
use sliq_math::Complex;

/// Maximum number of qubits accepted by the dense backend (the state vector
/// takes `16 · 2ⁿ` bytes).
pub const MAX_DENSE_QUBITS: usize = 30;

/// An array-based ("Schrödinger-style") state-vector simulator.
///
/// This is the classical baseline family the paper refers to as
/// *array-based* simulators; it is exponential in memory and therefore capped
/// at [`MAX_DENSE_QUBITS`] qubits, but within that range it is simple, fast
/// and serves as the ground-truth oracle for the symbolic backends.
///
/// Basis-state indexing: qubit `q` corresponds to bit `q` of the amplitude
/// index (qubit 0 is the least significant bit).
///
/// ```
/// use sliq_circuit::{Circuit, Simulator};
/// use sliq_dense::DenseSimulator;
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let mut sim = DenseSimulator::new(2);
/// sim.run(&bell)?;
/// assert!((sim.probability_of_basis_state(&[true, true]) - 0.5).abs() < 1e-12);
/// # Ok::<(), sliq_circuit::SimulationError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DenseSimulator {
    num_qubits: usize,
    amplitudes: Vec<Complex>,
}

impl DenseSimulator {
    /// Creates the simulator in the all-zeros basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > MAX_DENSE_QUBITS`.
    pub fn new(num_qubits: usize) -> Self {
        Self::with_initial_basis_state(num_qubits, 0)
    }

    /// Creates the simulator in the basis state whose index is `basis`
    /// (bit `q` of `basis` is the initial value of qubit `q`).
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > MAX_DENSE_QUBITS` or `basis >= 2^num_qubits`.
    pub fn with_initial_basis_state(num_qubits: usize, basis: usize) -> Self {
        assert!(
            num_qubits <= MAX_DENSE_QUBITS,
            "dense simulation limited to {MAX_DENSE_QUBITS} qubits"
        );
        let dim = 1usize << num_qubits;
        assert!(basis < dim, "initial basis state out of range");
        let mut amplitudes = vec![Complex::zero(); dim];
        amplitudes[basis] = Complex::one();
        Self {
            num_qubits,
            amplitudes,
        }
    }

    /// Creates the simulator from the bit values of each qubit.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() > MAX_DENSE_QUBITS`.
    pub fn with_initial_bits(bits: &[bool]) -> Self {
        let basis = bits
            .iter()
            .enumerate()
            .fold(0usize, |acc, (q, &b)| acc | ((b as usize) << q));
        Self::with_initial_basis_state(bits.len(), basis)
    }

    /// The raw state vector (length `2^num_qubits`).
    pub fn state(&self) -> &[Complex] {
        &self.amplitudes
    }

    /// Captures the current state vector as a checkpoint.
    pub fn snapshot(&self) -> Vec<Complex> {
        self.amplitudes.clone()
    }

    /// Rolls the state back to a snapshot taken by
    /// [`DenseSimulator::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if `snapshot.len() != 2^num_qubits`.
    pub fn restore(&mut self, snapshot: &[Complex]) {
        assert_eq!(
            snapshot.len(),
            self.amplitudes.len(),
            "snapshot dimension mismatch"
        );
        self.amplitudes.copy_from_slice(snapshot);
    }

    /// The probability of every basis state (index `i` has qubit `q` equal
    /// to bit `q` of `i`) — one pass over the state vector.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.iter().map(Complex::norm_sqr).collect()
    }

    /// The amplitude of a basis state given per-qubit bit values.
    pub fn amplitude(&self, bits: &[bool]) -> Complex {
        self.amplitudes[Self::index_of(bits)]
    }

    fn index_of(bits: &[bool]) -> usize {
        bits.iter()
            .enumerate()
            .fold(0usize, |acc, (q, &b)| acc | ((b as usize) << q))
    }

    fn apply_single(&mut self, m: &Matrix2, target: usize) {
        let mask = 1usize << target;
        for i in 0..self.amplitudes.len() {
            if i & mask == 0 {
                let j = i | mask;
                let a0 = self.amplitudes[i];
                let a1 = self.amplitudes[j];
                self.amplitudes[i] = m[0][0] * a0 + m[0][1] * a1;
                self.amplitudes[j] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
    }

    fn controls_satisfied(index: usize, controls: &[usize]) -> bool {
        controls.iter().all(|&c| index & (1 << c) != 0)
    }
}

impl Simulator for DenseSimulator {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    fn apply_gate(&mut self, gate: &Gate) -> Result<(), SimulationError> {
        match gate {
            Gate::X(q) => self.apply_single(&matrices::x(), *q),
            Gate::Y(q) => self.apply_single(&matrices::y(), *q),
            Gate::Z(q) => self.apply_single(&matrices::z(), *q),
            Gate::H(q) => self.apply_single(&matrices::h(), *q),
            Gate::S(q) => self.apply_single(&matrices::s(), *q),
            Gate::Sdg(q) => self.apply_single(&matrices::sdg(), *q),
            Gate::T(q) => self.apply_single(&matrices::t(), *q),
            Gate::Tdg(q) => self.apply_single(&matrices::tdg(), *q),
            Gate::RxPi2(q) => self.apply_single(&matrices::rx_pi2(), *q),
            Gate::RyPi2(q) => self.apply_single(&matrices::ry_pi2(), *q),
            Gate::Cnot { control, target } => {
                let (c, t) = (1usize << control, 1usize << target);
                for i in 0..self.amplitudes.len() {
                    if i & c != 0 && i & t == 0 {
                        self.amplitudes.swap(i, i | t);
                    }
                }
            }
            Gate::Cz { control, target } => {
                let (c, t) = (1usize << control, 1usize << target);
                for (i, amp) in self.amplitudes.iter_mut().enumerate() {
                    if i & c != 0 && i & t != 0 {
                        *amp = -*amp;
                    }
                }
            }
            Gate::Toffoli { controls, target } => {
                let t = 1usize << target;
                for i in 0..self.amplitudes.len() {
                    if i & t == 0 && Self::controls_satisfied(i, controls) {
                        self.amplitudes.swap(i, i | t);
                    }
                }
            }
            Gate::Fredkin {
                controls,
                target1,
                target2,
            } => {
                let (t1, t2) = (1usize << target1, 1usize << target2);
                for i in 0..self.amplitudes.len() {
                    if i & t1 != 0 && i & t2 == 0 && Self::controls_satisfied(i, controls) {
                        self.amplitudes.swap(i, i ^ t1 ^ t2);
                    }
                }
            }
            // Dynamic operations are interpreted by the session layer via
            // `measure_with`; they are not unitaries.
            Gate::Measure { .. } | Gate::Reset { .. } | Gate::Conditional { .. } => {
                return Err(SimulationError::UnsupportedGate {
                    backend: "dense",
                    gate: gate.to_string(),
                });
            }
        }
        Ok(())
    }

    fn probability_of_one(&mut self, qubit: usize) -> f64 {
        let mask = 1usize << qubit;
        self.amplitudes
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    fn probability_of_basis_state(&mut self, bits: &[bool]) -> f64 {
        self.amplitudes[Self::index_of(bits)].norm_sqr()
    }

    fn measure_with(&mut self, qubit: usize, u: f64) -> bool {
        let p1 = self.probability_of_one(qubit);
        let outcome = u < p1;
        let p = if outcome { p1 } else { 1.0 - p1 };
        let scale = 1.0 / p.sqrt();
        let mask = 1usize << qubit;
        for (i, amp) in self.amplitudes.iter_mut().enumerate() {
            if (i & mask != 0) == outcome {
                *amp = amp.scale(scale);
            } else {
                *amp = Complex::zero();
            }
        }
        outcome
    }

    fn total_probability(&mut self) -> f64 {
        self.amplitudes.iter().map(Complex::norm_sqr).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sliq_circuit::Circuit;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn initial_state_is_all_zeros() {
        let mut sim = DenseSimulator::new(3);
        assert!(close(
            sim.probability_of_basis_state(&[false, false, false]),
            1.0
        ));
        assert!(close(sim.total_probability(), 1.0));
        assert_eq!(sim.name(), "dense");
        assert_eq!(sim.num_qubits(), 3);
    }

    #[test]
    fn custom_initial_state() {
        let mut sim = DenseSimulator::with_initial_bits(&[true, false, true]);
        assert!(close(
            sim.probability_of_basis_state(&[true, false, true]),
            1.0
        ));
    }

    #[test]
    fn bell_state_probabilities() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut sim = DenseSimulator::new(2);
        sim.run(&c).unwrap();
        assert!(close(sim.probability_of_basis_state(&[false, false]), 0.5));
        assert!(close(sim.probability_of_basis_state(&[true, true]), 0.5));
        assert!(close(sim.probability_of_basis_state(&[true, false]), 0.0));
        assert!(close(sim.probability_of_one(0), 0.5));
        assert!(close(sim.total_probability(), 1.0));
    }

    #[test]
    fn ghz_collapse_on_measurement() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let mut sim = DenseSimulator::new(3);
        sim.run(&c).unwrap();
        // Force outcome 1 on qubit 0, then all qubits must read 1.
        let outcome = sim.measure_with(0, 0.49);
        assert!(outcome);
        for q in 0..3 {
            assert!(close(sim.probability_of_one(q), 1.0));
        }
        assert!(close(sim.total_probability(), 1.0));
    }

    #[test]
    fn toffoli_and_fredkin_permute_basis_states() {
        let mut sim = DenseSimulator::with_initial_bits(&[true, true, false]);
        sim.apply_gate(&Gate::Toffoli {
            controls: vec![0, 1],
            target: 2,
        })
        .unwrap();
        assert!(close(
            sim.probability_of_basis_state(&[true, true, true]),
            1.0
        ));
        sim.apply_gate(&Gate::Fredkin {
            controls: vec![0],
            target1: 1,
            target2: 2,
        })
        .unwrap();
        // Swap of two equal bits is a no-op.
        assert!(close(
            sim.probability_of_basis_state(&[true, true, true]),
            1.0
        ));
        sim.apply_gate(&Gate::X(1)).unwrap();
        sim.apply_gate(&Gate::Fredkin {
            controls: vec![0],
            target1: 1,
            target2: 2,
        })
        .unwrap();
        assert!(close(
            sim.probability_of_basis_state(&[true, true, false]),
            1.0
        ));
    }

    #[test]
    fn hadamard_twice_is_identity() {
        let mut sim = DenseSimulator::new(1);
        sim.apply_gate(&Gate::H(0)).unwrap();
        sim.apply_gate(&Gate::H(0)).unwrap();
        assert!(close(sim.probability_of_basis_state(&[false]), 1.0));
    }

    #[test]
    fn s_gate_phases_do_not_change_probabilities_but_compose_to_z() {
        let mut sim = DenseSimulator::new(1);
        sim.apply_gate(&Gate::H(0)).unwrap();
        sim.apply_gate(&Gate::S(0)).unwrap();
        sim.apply_gate(&Gate::S(0)).unwrap();
        sim.apply_gate(&Gate::H(0)).unwrap();
        // HZH = X, so the state is now |1⟩.
        assert!(close(sim.probability_of_one(0), 1.0));
    }

    #[test]
    fn swap_via_fredkin_without_controls() {
        let mut sim = DenseSimulator::with_initial_bits(&[true, false]);
        sim.apply_gate(&Gate::Fredkin {
            controls: vec![],
            target1: 0,
            target2: 1,
        })
        .unwrap();
        assert!(close(sim.probability_of_basis_state(&[false, true]), 1.0));
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn too_many_qubits_panics() {
        let _ = DenseSimulator::new(40);
    }
}
