//! In-tree stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the subset of the proptest 1.x API the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_filter` and
//!   `prop_recursive`,
//! * ranges and tuples of strategies, [`any`] for primitives,
//! * [`collection::vec`], the [`prop_oneof!`], [`proptest!`],
//!   [`prop_assert!`] and [`prop_assert_eq!`] macros,
//! * a deterministic per-test RNG (seeded from the test name), so failures
//!   reproduce exactly on re-run.
//!
//! There is **no shrinking**: a failing case panics with the generated inputs
//! formatted into the panic message instead of a minimised counterexample.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Generates a `Vec` whose length is drawn from `len` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a [`proptest!`] test body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::BoxedStrategy::new($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body on `config.cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let _ = case;
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
    )*};
}
