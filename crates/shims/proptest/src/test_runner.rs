//! Test execution configuration and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The RNG handed to strategies while generating values.
#[derive(Debug, Clone)]
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// A generator seeded deterministically from `name` (the test path), so
    /// every `cargo test` run exercises the identical case sequence.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            seed = (seed ^ byte as u64).wrapping_mul(0x100_0000_01b3);
        }
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}
