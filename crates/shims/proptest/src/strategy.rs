//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use rand::{Rng, RngCore, SampleRange};
use std::sync::Arc;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking; `generate`
/// simply draws one value.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one random value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `map`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, map }
    }

    /// Rejects generated values failing `predicate` (regenerating instead).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        predicate: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            predicate,
        }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for the
    /// inner level and returns the strategy for one level up.  `depth` bounds
    /// the nesting; `_desired_size` and `_branch_size` are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = BoxedStrategy::new(self);
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = BoxedStrategy::new(recurse(current));
            // Each level mixes in the leaf again so generated values vary in
            // depth rather than always bottoming out at `depth`.
            current = BoxedStrategy::new(WeightedUnion {
                choices: vec![(1, leaf.clone()), (3, deeper)],
            });
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(self)
    }
}

/// A cheaply clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> BoxedStrategy<T> {
    /// Erases `strategy`.
    pub fn new<S: Strategy<Value = T> + 'static>(strategy: S) -> Self {
        Self(Arc::new(strategy))
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    predicate: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let value = self.inner.generate(rng);
            if (self.predicate)(&value) {
                return value;
            }
        }
        panic!("prop_filter({:?}) rejected 10000 candidates", self.reason);
    }
}

/// Uniform choice among type-erased strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union drawing uniformly from `choices`.
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Self { choices }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            choices: self.choices.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.rng.gen_range(0..self.choices.len());
        self.choices[index].generate(rng)
    }
}

/// Weighted union used by `prop_recursive` to mix leaves into deep levels.
pub(crate) struct WeightedUnion<T> {
    pub(crate) choices: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u32 = self.choices.iter().map(|(w, _)| *w).sum();
        let mut draw = rng.rng.gen_range(0..total);
        for (weight, strategy) in &self.choices {
            if draw < *weight {
                return strategy.generate(rng);
            }
            draw -= weight;
        }
        unreachable!("weights cover the draw range")
    }
}

// ---------------------------------------------------------------------- //
// Primitive strategies
// ---------------------------------------------------------------------- //

/// Strategy for any value of a primitive type (mirrors `proptest::arbitrary`).
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full-range strategy for a primitive type.
pub fn any<T: ArbitraryPrimitive>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Primitive types supported by [`any`].
pub trait ArbitraryPrimitive: Sized {
    /// Draws one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryPrimitive for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl ArbitraryPrimitive for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryPrimitive for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.rng.next_u64() as u128) << 64) | rng.rng.next_u64() as u128
    }
}

impl<T: ArbitraryPrimitive> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// Ranges are strategies, as in real proptest.
macro_rules! impl_range_strategy {
    ($($range:ident),*) => {$(
        impl<T> Strategy for std::ops::$range<T>
        where
            T: Clone,
            std::ops::$range<T>: SampleRange<T>,
        {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.clone().sample(&mut rng.rng)
            }
        }
    )*};
}

impl_range_strategy!(Range, RangeInclusive, RangeFrom);

// Tuples of strategies are strategies over tuples.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
