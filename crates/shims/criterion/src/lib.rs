//! In-tree stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the subset of the criterion 0.5 API the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], [`criterion_group!`] and
//! [`criterion_main!`].
//!
//! Measurement model: after a warm-up, each sample times a batch of
//! iterations sized so one batch takes ≳2 ms, and the reported statistics
//! (median and minimum time per iteration) are taken over `sample_size`
//! batches.  That is cruder than real criterion's bootstrap analysis but
//! plenty to compare kernels at the 1.5×+ granularity this repo cares about.

#![forbid(unsafe_code)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
    /// Smoke mode (`SLIQ_BENCH_SMOKE=1`): run every benchmark exactly once
    /// with no warm-up and a single sample, so CI can exercise the bench
    /// harness end-to-end without paying measurement-grade runtimes.
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench` (and any user trailing args); the only
        // one honoured here is a substring filter on benchmark names.
        let filter = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
        Self {
            filter,
            default_sample_size: 20,
            smoke: std::env::var_os("SLIQ_BENCH_SMOKE").is_some_and(|v| v != "0"),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, routine: F) {
        let sample_size = self.default_sample_size;
        self.run_one(name.to_string(), sample_size, routine);
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        name: String,
        sample_size: usize,
        mut routine: F,
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: if self.smoke { 1 } else { sample_size },
            smoke: self.smoke,
            samples: Vec::new(),
        };
        routine(&mut bencher);
        report(&name, &bencher.samples);
    }
}

/// A group of benchmarks sharing a name prefix and a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `routine` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: F,
    ) {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(full, sample_size, routine);
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) {
        self.bench_function(id, |b| routine(b, input));
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group: `function/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{}/{}", function.into(), parameter))
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self(name.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self(name)
    }
}

/// How [`Bencher::iter_batched`] sizes its setup batches (accepted for API
/// compatibility; the shim sizes batches adaptively regardless).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are cheap to hold; batch freely.
    SmallInput,
    /// Inputs are large; keep batches small.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Passed to the benchmark routine; call [`Bencher::iter`] with the code to
/// measure.
pub struct Bencher {
    sample_size: usize,
    smoke: bool,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `routine`, retaining per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.smoke {
            let start = Instant::now();
            black_box(routine());
            self.samples = vec![start.elapsed()];
            return;
        }
        // Warm-up and batch sizing: one batch should take ≳2 ms so that
        // Instant overhead is negligible.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        for _ in 0..2 {
            for _ in 0..batch {
                black_box(routine());
            }
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    /// Measures `routine` on inputs built by `setup`, excluding the setup
    /// cost from the timings (e.g. cloning a prepared simulator before
    /// applying a single gate to it).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.smoke {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples = vec![start.elapsed()];
            return;
        }
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(50));
        // Cap batches at 32 held inputs so setup products (which can be
        // multi-MiB simulator states) do not exhaust memory.
        let batch = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 32) as u32;
        let warmup: Vec<I> = (0..batch).map(|_| setup()).collect();
        for input in warmup {
            black_box(routine(input));
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(start.elapsed() / batch);
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = *sorted.last().expect("non-empty");
    println!(
        "{name:<40} time: [{} {} {}]",
        format_duration(min),
        format_duration(median),
        format_duration(max),
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos() as f64;
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
