//! In-tree stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the (small) subset of the `rand` 0.8 API that the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`],
//! [`Rng::gen_bool`] and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic,
//! fast and statistically solid for workload generation, but **not**
//! cryptographically secure and not stream-compatible with the real `rand`
//! crate (seeded circuits differ from ones generated with upstream `rand`,
//! which is irrelevant here because all seeds are internal to this repo).

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// A type that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is ~2^-64 for the tiny spans used here.
                let value = (rng.next_u64() as u128) % span;
                (self.start as i128 + value as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let value = (rng.next_u64() as u128) % span;
                (start as i128 + value as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeFrom<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let span = <$t>::MAX as i128 - self.start as i128 + 1;
                let value = (rng.next_u64() as u128) % span as u128;
                (self.start as i128 + value as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<u128> for std::ops::Range<u128> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        self.start + wide % span
    }
}

impl SampleRange<i128> for std::ops::Range<i128> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> i128 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.wrapping_sub(self.start) as u128;
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        self.start.wrapping_add((wide % span) as i128)
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding support; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random slice rearrangement (only `shuffle` is provided).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.gen_range(0..10);
            assert_eq!(x, b.gen_range(0..10));
            assert!((0..10).contains(&x));
            let f = a.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let _ = b.gen_range(0.0..1.0);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((350..=650).contains(&heads), "suspicious bias: {heads}");
    }
}
