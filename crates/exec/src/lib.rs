//! # sliq-exec
//!
//! The session/executor layer of the workspace: one API over every
//! simulator backend, realising the paper's claim that a single bit-sliced
//! representation serves both strong simulation (exact amplitudes) and weak
//! simulation (measurement sampling) — and extending that surface to the
//! baseline backends so callers never hand-roll backend construction.
//!
//! * [`BackendKind`] / [`Capabilities`] — the backend registry with
//!   capability negotiation ([`BackendKind::Auto`] picks the stabilizer
//!   tableau for Clifford-only circuits, the bit-sliced BDD otherwise).
//! * [`Session`] — owns a backend; streams gates ([`Session::apply_gate`])
//!   or runs circuits ([`Session::run`] → structured [`RunResult`]),
//!   checkpoints ([`Session::snapshot`] / [`Session::restore`]).
//! * [`Session::sample`] — **batched multi-shot sampling**: `shots`
//!   measurement shots from one simulated state, via non-collapsing
//!   conditional-probability descent (orders of magnitude faster than
//!   re-simulating the circuit per shot; see [`sample`]).
//! * [`ResultCache`] — the serving-scale layer above all of that: memoised
//!   `RunResult`s and histograms behind a stable canonical-circuit
//!   fingerprint, so repeated requests for the same circuit skip
//!   simulation entirely (see [`cache`]).
//! * [`ExecError`] — the unified failure taxonomy.
//!
//! ```
//! use sliq_exec::{BackendKind, Session, SessionConfig};
//! use sliq_circuit::Circuit;
//!
//! let mut circuit = Circuit::new(3);
//! circuit.h(0).cx(0, 1).cx(1, 2).t(2);   // non-Clifford ⇒ Auto → bitslice
//! let mut session = Session::for_circuit(&circuit, SessionConfig::default())?;
//! assert_eq!(session.kind(), BackendKind::BitSlice);
//! let result = session.run(&circuit)?;
//! assert!(result.probability_error() < 1e-12);
//! let shots = session.sample(2000, 7)?;
//! assert_eq!(shots.histogram.shots(), 2000);
//! # Ok::<(), sliq_exec::ExecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
pub mod cache;
mod error;
pub mod sample;
mod session;

pub use backend::{BackendKind, Capabilities};
pub use cache::{circuit_fingerprint, dynamic_fingerprint, ResultCache, ResultCacheStats};
pub use error::{wire, CapacityResource, ExecError};
pub use sample::Histogram;
pub use session::{ExecStats, RunResult, SampleResult, Session, SessionConfig, Snapshot};

#[cfg(test)]
mod tests {
    use super::*;
    use sliq_circuit::Circuit;

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        c
    }

    #[test]
    fn session_runs_and_reports_structured_results() {
        let mut circuit = ghz(4);
        circuit.t(3); // force the bit-sliced backend
        let config = SessionConfig::default().expectations(true);
        let mut session = Session::for_circuit(&circuit, config).unwrap();
        assert_eq!(session.kind(), BackendKind::BitSlice);
        let result = session.run(&circuit).unwrap();
        assert_eq!(result.gates_applied, 5);
        assert!(result.probability_error() < 1e-12);
        let expectations = result.expectations_z.as_ref().unwrap();
        assert_eq!(expectations.len(), 4);
        // GHZ marginals are uniform: ⟨Z⟩ = 0 on every qubit (T adds a phase
        // only).
        for &z in expectations {
            assert!(z.abs() < 1e-9);
        }
        assert!(result.stats.live_nodes.unwrap() > 0);
        assert!(result.stats.memory_mib > 0.0);
        assert!(result.stats.bdd.is_some());
    }

    #[test]
    fn streaming_and_whole_circuit_execution_agree() {
        let circuit = ghz(3);
        let mut streamed = Session::new(3, SessionConfig::with_backend(BackendKind::Qmdd)).unwrap();
        for gate in circuit.iter() {
            streamed.apply_gate(gate).unwrap();
        }
        let mut whole = Session::new(3, SessionConfig::with_backend(BackendKind::Qmdd)).unwrap();
        whole.run(&circuit).unwrap();
        assert_eq!(streamed.gates_applied(), whole.gates_applied());
        for bits in [[false; 3], [true; 3]] {
            let a = streamed.probability_of_basis_state(&bits);
            let b = whole.probability_of_basis_state(&bits);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn qubit_mismatch_is_rejected() {
        let mut session = Session::new(3, SessionConfig::with_backend(BackendKind::Dense)).unwrap();
        let err = session.run(&ghz(4)).unwrap_err();
        assert!(matches!(
            err,
            ExecError::QubitMismatch {
                session: 3,
                circuit: 4
            }
        ));
    }

    #[test]
    fn snapshots_roll_back_every_backend() {
        for kind in BackendKind::ALL {
            let mut session = Session::new(2, SessionConfig::with_backend(kind)).unwrap();
            session.run(&ghz(2)).unwrap();
            let snapshot = session.snapshot();
            let gates_at_snapshot = session.gates_applied();
            // Collapse qubit 0 to a definite outcome.
            let outcome = session.measure_with(0, 0.3);
            let collapsed = session.probability_of_one(0);
            assert!(
                (collapsed - if outcome { 1.0 } else { 0.0 }).abs() < 1e-9,
                "{kind}"
            );
            session.restore(&snapshot).unwrap();
            assert_eq!(session.gates_applied(), gates_at_snapshot);
            assert!(
                (session.probability_of_one(0) - 0.5).abs() < 1e-9,
                "{kind}: snapshot must restore the superposition"
            );
            session.discard(snapshot).unwrap();
        }
    }

    #[test]
    fn foreign_snapshots_are_rejected() {
        // Cross-backend and cross-session (same backend) snapshots both
        // fail instead of corrupting manager-internal handles.
        let mut dense = Session::new(2, SessionConfig::with_backend(BackendKind::Dense)).unwrap();
        let mut qmdd_a = Session::new(2, SessionConfig::with_backend(BackendKind::Qmdd)).unwrap();
        let mut qmdd_b = Session::new(2, SessionConfig::with_backend(BackendKind::Qmdd)).unwrap();
        let dense_snapshot = dense.snapshot();
        assert!(matches!(
            qmdd_a.restore(&dense_snapshot),
            Err(ExecError::ForeignSnapshot { .. })
        ));
        let a_snapshot = qmdd_a.snapshot();
        assert!(matches!(
            qmdd_b.restore(&a_snapshot),
            Err(ExecError::ForeignSnapshot { backend: "qmdd" })
        ));
        assert!(qmdd_b.discard(a_snapshot).is_err());
        dense.discard(dense_snapshot).unwrap();
    }

    #[test]
    fn sampling_is_reproducible_and_distribution_shaped() {
        let circuit = ghz(5);
        let mut session = Session::for_circuit(&circuit, SessionConfig::default()).unwrap();
        assert_eq!(session.kind(), BackendKind::Stabilizer);
        session.run(&circuit).unwrap();
        let a = session.sample(4000, 3).unwrap();
        let b = session.sample(4000, 3).unwrap();
        assert_eq!(a.histogram, b.histogram);
        let c = session.sample(4000, 4).unwrap();
        assert_ne!(a.histogram, c.histogram);
        // Only the two GHZ outcomes occur.
        assert_eq!(
            a.histogram.count_of(0) + a.histogram.count_of(0b11111),
            4000
        );
        assert!(a.shots_per_sec() > 0.0);
    }

    #[test]
    fn bitslice_sample_cache_is_reused_and_invalidated_on_mutation() {
        let mut circuit = ghz(4);
        circuit.t(3); // non-Clifford ⇒ bit-sliced backend
        let config = SessionConfig::with_backend(BackendKind::BitSlice);
        let mut session = Session::for_circuit(&circuit, config).unwrap();
        session.run(&circuit).unwrap();
        let first = session.sample(3000, 11).unwrap();
        let repeat = session.sample(3000, 11).unwrap();
        assert_eq!(first.histogram, repeat.histogram);
        // A cold-cache session computes the same histogram: the cache only
        // memoises work, never results.
        let mut cold = Session::for_circuit(&circuit, config).unwrap();
        cold.run(&circuit).unwrap();
        assert_eq!(cold.sample(3000, 11).unwrap().histogram, first.histogram);
        // Mutating the state must invalidate the memoised trie: the next
        // sample reflects the new state, matching a session that never
        // cached the old one.
        let mut flip = Circuit::new(4);
        flip.x(0);
        session.run(&flip).unwrap();
        let after = session.sample(3000, 11).unwrap();
        assert_ne!(after.histogram, first.histogram);
        cold.run(&flip).unwrap();
        assert_eq!(cold.sample(3000, 11).unwrap().histogram, after.histogram);
    }

    #[test]
    fn node_limit_surfaces_as_a_resource_error() {
        let mut circuit = Circuit::new(12);
        for q in 0..12 {
            circuit.h(q);
        }
        for q in 0..11 {
            circuit.cx(q, q + 1);
            circuit.t(q);
            circuit.h(q);
        }
        let config = SessionConfig::with_backend(BackendKind::BitSlice).max_nodes(16);
        let mut session = Session::for_circuit(&circuit, config).unwrap();
        assert!(matches!(
            session.run(&circuit),
            Err(ExecError::Resource { .. })
        ));
    }
}
