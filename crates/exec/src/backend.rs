//! The backend registry and capability negotiation.
//!
//! Every simulator backend in the workspace is described by a
//! [`BackendKind`] and a static [`Capabilities`] record (exact vs floating
//! point, Clifford-only, reorder support, practical qubit limits, memory
//! model).  [`BackendKind::Auto`] resolves against a concrete circuit:
//! Clifford-only circuits go to the stabilizer tableau (polynomial in any
//! qubit count), everything else to the bit-sliced BDD backend (the paper's
//! method, exact for the full gate set).

use crate::error::{CapacityResource, ExecError};
use sliq_circuit::Circuit;

/// The simulator backends a [`crate::Session`] can own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Pick automatically from the circuit (stabilizer for Clifford-only
    /// circuits, bit-sliced BDD otherwise).
    Auto,
    /// The bit-sliced BDD simulator (the paper's method, "Ours").
    BitSlice,
    /// The QMDD baseline (the DDSIM stand-in).
    Qmdd,
    /// The dense array-based simulator.
    Dense,
    /// The CHP stabilizer simulator (Clifford circuits only).
    Stabilizer,
}

/// Static description of what a backend can and cannot do — the data the
/// session layer negotiates against before any state is allocated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capabilities {
    /// The backend's `Simulator::name`.
    pub name: &'static str,
    /// Short column label used in printed tables ("Ours", "QMDD", …).
    pub label: &'static str,
    /// `true` if amplitudes/probabilities are exact (algebraic or
    /// combinatorial), `false` for floating-point representations that
    /// accumulate rounding drift.
    pub exact: bool,
    /// `true` if only Clifford-group gates are supported.
    pub clifford_only: bool,
    /// `true` if the backend supports dynamic variable reordering.
    pub supports_reorder: bool,
    /// Hard qubit capacity, if the representation is exponential in memory.
    pub max_qubits: Option<usize>,
    /// Bytes per representation node, for symbolic backends (memory
    /// estimates roughly matching the respective C/C++ implementations).
    pub bytes_per_node: Option<f64>,
    /// `true` if the session layer can run dynamic circuits (mid-circuit
    /// measurement, reset, classical feed-forward) on this backend.  The
    /// backend itself only needs `measure_with` collapse; the classical
    /// register and the seeded measurement stream live in the session.
    pub supports_dynamic: bool,
}

const BITSLICE_CAPS: Capabilities = Capabilities {
    name: "bitslice",
    label: "Ours",
    exact: true,
    clifford_only: false,
    supports_reorder: true,
    max_qubits: None,
    bytes_per_node: Some(48.0),
    supports_dynamic: true,
};

const QMDD_CAPS: Capabilities = Capabilities {
    name: "qmdd",
    label: "QMDD",
    exact: false,
    clifford_only: false,
    supports_reorder: false,
    max_qubits: None,
    bytes_per_node: Some(96.0),
    supports_dynamic: true,
};

const DENSE_CAPS: Capabilities = Capabilities {
    name: "dense",
    label: "Dense",
    exact: false,
    clifford_only: false,
    supports_reorder: false,
    max_qubits: Some(sliq_dense::MAX_DENSE_QUBITS),
    bytes_per_node: None,
    supports_dynamic: true,
};

const STABILIZER_CAPS: Capabilities = Capabilities {
    name: "stabilizer",
    label: "CHP",
    exact: true,
    clifford_only: true,
    supports_reorder: false,
    max_qubits: None,
    bytes_per_node: None,
    supports_dynamic: true,
};

impl BackendKind {
    /// Every concrete backend, in registry order (no `Auto`).
    pub const ALL: [BackendKind; 4] = [
        BackendKind::BitSlice,
        BackendKind::Qmdd,
        BackendKind::Dense,
        BackendKind::Stabilizer,
    ];

    /// The backend's static capability record.
    ///
    /// `Auto` reports the bit-sliced capabilities (its fallback choice).
    pub fn capabilities(&self) -> &'static Capabilities {
        match self {
            BackendKind::Auto | BackendKind::BitSlice => &BITSLICE_CAPS,
            BackendKind::Qmdd => &QMDD_CAPS,
            BackendKind::Dense => &DENSE_CAPS,
            BackendKind::Stabilizer => &STABILIZER_CAPS,
        }
    }

    /// Short column label used in printed tables.
    pub fn label(&self) -> &'static str {
        self.capabilities().label
    }

    /// The backend's `Simulator::name`.
    pub fn name(&self) -> &'static str {
        self.capabilities().name
    }

    /// Resolves `Auto` against a concrete circuit: the stabilizer tableau
    /// for Clifford-only circuits, the bit-sliced BDD backend otherwise.
    /// Concrete kinds resolve to themselves.
    pub fn resolve(&self, circuit: &Circuit) -> BackendKind {
        match self {
            BackendKind::Auto => {
                if circuit.is_clifford() {
                    BackendKind::Stabilizer
                } else {
                    BackendKind::BitSlice
                }
            }
            concrete => *concrete,
        }
    }

    /// Checks the static capacities (all a backend can promise without
    /// seeing the circuit): the hard qubit ceiling, and — when a byte
    /// budget is given — whatever footprint is exactly predictable up
    /// front.  The dense state vector is the only backend with a
    /// closed-form footprint (`16·2ⁿ` bytes of amplitudes), so an
    /// over-budget dense session is refused at admission instead of
    /// OOM-ing during allocation; symbolic backends enforce the budget at
    /// run time instead.
    pub fn check_capacity(
        &self,
        num_qubits: usize,
        max_bytes: Option<usize>,
    ) -> Result<(), ExecError> {
        let caps = self.capabilities();
        if let Some(limit) = caps.max_qubits {
            if num_qubits > limit {
                return Err(ExecError::CapacityExceeded {
                    backend: caps.name,
                    resource: CapacityResource::Qubits {
                        requested: num_qubits,
                        limit,
                    },
                });
            }
        }
        if let (Some(budget), BackendKind::Dense) = (max_bytes, self.resolve_static()) {
            let projected =
                16usize.saturating_mul(1usize.checked_shl(num_qubits as u32).unwrap_or(usize::MAX));
            if projected > budget {
                return Err(ExecError::CapacityExceeded {
                    backend: caps.name,
                    resource: CapacityResource::Bytes {
                        used: projected,
                        limit: budget,
                    },
                });
            }
        }
        Ok(())
    }

    /// `Auto` resolved without a circuit: its bit-sliced fallback.
    fn resolve_static(&self) -> BackendKind {
        match self {
            BackendKind::Auto => BackendKind::BitSlice,
            concrete => *concrete,
        }
    }

    /// Full capability negotiation against a circuit: qubit capacity plus
    /// gate-set support.  `Auto` always negotiates successfully for the
    /// supported gate set (it routes around the Clifford restriction).
    pub fn check_circuit(&self, circuit: &Circuit) -> Result<(), ExecError> {
        let resolved = self.resolve(circuit);
        let caps = resolved.capabilities();
        resolved.check_capacity(circuit.num_qubits(), None)?;
        if caps.clifford_only && !circuit.is_clifford() {
            return Err(ExecError::Unsupported {
                backend: caps.name,
                what: "non-Clifford circuits".into(),
            });
        }
        if circuit.is_dynamic() && !caps.supports_dynamic {
            return Err(ExecError::Unsupported {
                backend: caps.name,
                what: "dynamic circuits (measurement, reset, feed-forward)".into(),
            });
        }
        Ok(())
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendKind::Auto => write!(f, "auto"),
            concrete => write!(f, "{}", concrete.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_routes_clifford_circuits_to_the_stabilizer() {
        let mut clifford = Circuit::new(2);
        clifford.h(0).cx(0, 1).s(1);
        assert_eq!(
            BackendKind::Auto.resolve(&clifford),
            BackendKind::Stabilizer
        );
        let mut universal = Circuit::new(2);
        universal.h(0).t(0);
        assert_eq!(BackendKind::Auto.resolve(&universal), BackendKind::BitSlice);
        assert_eq!(BackendKind::Qmdd.resolve(&clifford), BackendKind::Qmdd);
    }

    #[test]
    fn negotiation_rejects_what_the_capabilities_say() {
        let mut t_circuit = Circuit::new(2);
        t_circuit.h(0).t(0);
        assert!(matches!(
            BackendKind::Stabilizer.check_circuit(&t_circuit),
            Err(ExecError::Unsupported { .. })
        ));
        assert!(BackendKind::Auto.check_circuit(&t_circuit).is_ok());
        let wide = Circuit::new(40);
        assert!(matches!(
            BackendKind::Dense.check_circuit(&wide),
            Err(ExecError::CapacityExceeded {
                backend: "dense",
                resource: CapacityResource::Qubits {
                    requested: 40,
                    limit: 30,
                },
            })
        ));
        assert!(BackendKind::BitSlice.check_circuit(&wide).is_ok());
    }

    #[test]
    fn dense_admission_projects_its_footprint_against_a_byte_budget() {
        // 20 qubits of dense amplitudes is exactly 16 MiB; a 1 MiB budget
        // must refuse at admission, an unlimited budget must admit.
        let budget = Some(1usize << 20);
        assert!(matches!(
            BackendKind::Dense.check_capacity(20, budget),
            Err(ExecError::CapacityExceeded {
                backend: "dense",
                resource: CapacityResource::Bytes { used, limit }
            }) if used == 16 << 20 && limit == 1 << 20
        ));
        assert!(BackendKind::Dense.check_capacity(20, None).is_ok());
        assert!(BackendKind::Dense
            .check_capacity(20, Some(32 << 20))
            .is_ok());
        // Symbolic backends defer byte enforcement to run time.
        assert!(BackendKind::BitSlice
            .check_capacity(40, Some(1 << 20))
            .is_ok());
    }

    #[test]
    fn dynamic_circuits_negotiate_on_every_backend() {
        use sliq_circuit::Gate;
        // Teleportation-shaped circuit: Clifford gates + measurement +
        // feed-forward.  Dynamic Clifford circuits stay on the stabilizer
        // under Auto (measurement collapse is native to the tableau).
        let mut teleport = Circuit::with_clbits(3, 2);
        teleport
            .h(1)
            .cx(1, 2)
            .cx(0, 1)
            .h(0)
            .measure(0, 0)
            .measure(1, 1)
            .if_bit(1, Gate::X(2))
            .if_bit(0, Gate::Z(2));
        assert!(teleport.is_dynamic());
        assert_eq!(
            BackendKind::Auto.resolve(&teleport),
            BackendKind::Stabilizer
        );
        for kind in BackendKind::ALL {
            assert!(
                kind.capabilities().supports_dynamic,
                "{kind} must advertise dynamic support"
            );
            assert!(kind.check_circuit(&teleport).is_ok(), "{kind} rejects it");
        }
        // Dynamic does not override the Clifford restriction: a dynamic
        // circuit with a T gate still fails stabilizer negotiation.
        let mut magic = Circuit::with_clbits(2, 1);
        magic.h(0).t(0).measure(0, 0);
        assert!(matches!(
            BackendKind::Stabilizer.check_circuit(&magic),
            Err(ExecError::Unsupported { .. })
        ));
        assert_eq!(BackendKind::Auto.resolve(&magic), BackendKind::BitSlice);
    }

    #[test]
    fn registry_is_consistent() {
        for kind in BackendKind::ALL {
            let caps = kind.capabilities();
            assert!(!caps.name.is_empty());
            assert!(!caps.label.is_empty());
            assert_eq!(kind.to_string(), caps.name);
        }
        // Exactly the exact backends claim exactness.
        assert!(BackendKind::BitSlice.capabilities().exact);
        assert!(BackendKind::Stabilizer.capabilities().exact);
        assert!(!BackendKind::Qmdd.capabilities().exact);
        assert!(!BackendKind::Dense.capabilities().exact);
    }
}
