//! The [`Session`]: one owned backend, streamed gates, checkpoints and
//! batched sampling behind a single façade.
//!
//! A session is opened for a fixed qubit count with a [`SessionConfig`]
//! (backend choice, resource limits, reorder policy), fed gates or whole
//! circuits, and queried for probabilities, samples and structured
//! [`RunResult`]s.  All four workspace backends sit behind the same calls;
//! [`crate::BackendKind::Auto`] picks the backend from the circuit.

use crate::backend::BackendKind;
use crate::cache::{self, CacheKey, ResultCache, ResultCacheStats};
use crate::error::ExecError;
use crate::sample::{self, Histogram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sliq_circuit::{Circuit, Gate, Simulator};
use sliq_core::{BitSliceLimits, BitSliceSimulator, StateSnapshot};
use sliq_dense::DenseSimulator;
use sliq_math::Complex;
use sliq_qmdd::{QmddLimits, QmddSimulator, QmddSnapshot};
use sliq_stabilizer::{StabilizerSimulator, Tableau};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a [`Session`].
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Which backend to own ([`BackendKind::Auto`] resolves per circuit in
    /// [`Session::for_circuit`], and to the bit-sliced backend in
    /// [`Session::new`]).
    pub backend: BackendKind,
    /// Live-node limit for the symbolic backends (`None` = unlimited);
    /// exceeding it fails the offending gate with [`ExecError::Resource`].
    pub max_nodes: Option<usize>,
    /// Byte budget for the backend state (`None` = unlimited).  On the
    /// bit-sliced backend the kernel accounts arena + unique subtables + op
    /// caches against it (and bounds its own sifting passes); exceeding it
    /// fails the offending gate with [`ExecError::CapacityExceeded`] while
    /// the session stays queryable and pre-limit snapshots restorable.  On
    /// the dense backend the projected `16·2ⁿ` footprint is checked at
    /// admission.
    pub max_bytes: Option<usize>,
    /// Enables automatic variable reordering on backends that support it.
    pub auto_reorder: bool,
    /// Collect per-qubit ⟨Z⟩ expectations into every [`RunResult`] (costs
    /// one probability query per qubit on symbolic backends).
    pub collect_expectations: bool,
    /// Fan-out width for backends with parallel apply (the bit-sliced
    /// backend's per-gate slice updates and its batched-sampling descent).
    /// `None` defers to the backend default (`SLIQ_THREADS`, falling back
    /// to the machine's available parallelism); results are identical at
    /// every thread count.
    pub threads: Option<usize>,
    /// Forces the bit-sliced backend onto the shared (CAS/seqlock) kernel
    /// flavour even when the session is single-threaded.  A measurement and
    /// differential-testing knob: 1-thread sessions otherwise select the
    /// unsynchronized serial fast path, and the difference between the two
    /// is exactly the synchronization tax the bench harness reports as
    /// `serial_overhead`.  Results are identical either way.
    pub force_shared_kernel: bool,
    /// Attaches the process-wide [`ResultCache::global`] to the session:
    /// fresh-state [`Session::run`]/[`Session::sample`] calls are served
    /// from memoised results of *any* earlier session that ran the same
    /// canonical circuit under the same result-affecting configuration (see
    /// [`crate::cache`] for the keying and soundness argument).  Use
    /// [`Session::attach_result_cache`] to attach a private cache instead.
    pub use_result_cache: bool,
    /// Seed for mid-circuit measurement and reset randomness in dynamic
    /// circuits.  Runs are a deterministic function of circuit × seed, which
    /// makes dynamic circuits reproducible, cross-backend
    /// differential-testable, and result-cacheable (the seed is mixed into
    /// the cache key by [`crate::cache::dynamic_fingerprint`]).
    pub measurement_seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            backend: BackendKind::Auto,
            max_nodes: None,
            max_bytes: None,
            auto_reorder: false,
            collect_expectations: false,
            threads: None,
            force_shared_kernel: false,
            use_result_cache: false,
            measurement_seed: 0,
        }
    }
}

impl SessionConfig {
    /// Starts from defaults with an explicit backend.
    pub fn with_backend(backend: BackendKind) -> Self {
        Self {
            backend,
            ..Self::default()
        }
    }

    /// Sets the live-node limit (builder style).
    pub fn max_nodes(mut self, limit: usize) -> Self {
        self.max_nodes = Some(limit);
        self
    }

    /// Sets the byte budget (builder style); see
    /// [`SessionConfig::max_bytes`].
    pub fn max_bytes(mut self, limit: usize) -> Self {
        self.max_bytes = Some(limit);
        self
    }

    /// Enables automatic variable reordering (builder style).
    pub fn auto_reorder(mut self, enabled: bool) -> Self {
        self.auto_reorder = enabled;
        self
    }

    /// Enables ⟨Z⟩ expectation collection in run results (builder style).
    pub fn expectations(mut self, enabled: bool) -> Self {
        self.collect_expectations = enabled;
        self
    }

    /// Sets the parallel-apply fan-out width (builder style); 1 forces the
    /// serial path.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Forces the shared kernel flavour regardless of the thread count
    /// (builder style); see [`SessionConfig::force_shared_kernel`].
    pub fn force_shared_kernel(mut self, enabled: bool) -> Self {
        self.force_shared_kernel = enabled;
        self
    }

    /// Attaches the process-wide result cache (builder style); see
    /// [`SessionConfig::use_result_cache`].
    pub fn result_cache(mut self, enabled: bool) -> Self {
        self.use_result_cache = enabled;
        self
    }

    /// Sets the seed for mid-circuit measurement randomness (builder
    /// style); see [`SessionConfig::measurement_seed`].
    pub fn measurement_seed(mut self, seed: u64) -> Self {
        self.measurement_seed = seed;
        self
    }
}

/// Representation statistics of a session's backend at a point in time.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Live representation nodes (symbolic backends only).
    pub live_nodes: Option<usize>,
    /// Peak allocated nodes over the session (symbolic backends only).
    pub peak_nodes: Option<usize>,
    /// Approximate peak memory of the state representation in MiB.
    pub memory_mib: f64,
    /// Full BDD kernel counters (bit-sliced backend only): cache hit rates,
    /// GC runs, reorder statistics.
    pub bdd: Option<sliq_bdd::ManagerStats>,
    /// Counters of the attached [`ResultCache`], when the session has one.
    /// Inside a cached [`RunResult`] these are the counters at *publish*
    /// time; call [`Session::stats`] for live values.
    pub result_cache: Option<ResultCacheStats>,
}

impl ExecStats {
    /// Reorder runs so far (0 for backends without reordering).
    pub fn reorders(&self) -> usize {
        self.bdd.as_ref().map_or(0, |s| s.reorders)
    }
}

/// The structured result of [`Session::run`].
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The concrete backend that executed the circuit.
    pub backend: BackendKind,
    /// Gates applied by this run.
    pub gates_applied: usize,
    /// Wall-clock time of this run.
    pub elapsed: Duration,
    /// The sum of all outcome probabilities after the run (1 up to float
    /// conversion for exact backends; drifts on floating-point backends).
    pub total_probability: f64,
    /// Per-qubit ⟨Z⟩ expectations (`1 − 2·Pr[q = 1]`), when
    /// [`SessionConfig::collect_expectations`] is set.
    pub expectations_z: Option<Vec<f64>>,
    /// Final classical-register contents for dynamic circuits (bit `i` is
    /// clbit `i`), `None` for circuits without dynamic operations.  The
    /// readout is a deterministic function of circuit ×
    /// [`SessionConfig::measurement_seed`].
    pub readout: Option<Vec<bool>>,
    /// Representation statistics at the end of the run.
    pub stats: ExecStats,
}

impl RunResult {
    /// Deviation of the total probability from 1 — the paper's "error"
    /// criterion for floating-point backends.
    pub fn probability_error(&self) -> f64 {
        (self.total_probability - 1.0).abs()
    }
}

/// The result of one [`Session::sample`] call.
#[derive(Debug, Clone)]
pub struct SampleResult {
    /// The backend that sampled.
    pub backend: BackendKind,
    /// Number of shots drawn.
    pub shots: u64,
    /// Wall-clock time of the batched sampling.
    pub elapsed: Duration,
    /// Outcome counts, behind [`Arc`] so cache hits (and plain clones)
    /// share the histogram instead of deep-copying its counts.
    pub histogram: Arc<Histogram>,
}

impl SampleResult {
    /// Sampling throughput.
    pub fn shots_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.shots as f64 / secs
        } else {
            f64::INFINITY
        }
    }
}

enum Inner {
    BitSlice(Box<BitSliceSimulator>),
    Dense(Box<DenseSimulator>),
    Qmdd(Box<QmddSimulator>),
    Stabilizer(Box<StabilizerSimulator>),
}

enum SnapshotInner {
    BitSlice(StateSnapshot),
    Dense(Vec<Complex>),
    Qmdd(QmddSnapshot),
    Stabilizer(Box<Tableau>),
}

/// A session checkpoint taken by [`Session::snapshot`].
///
/// Snapshots are cheap for every backend (pinned roots for the symbolic
/// backends, a vector/tableau copy otherwise), survive any number of later
/// gates and measurements, and can be restored repeatedly.  Call
/// [`Session::discard`] when done; an undiscarded symbolic snapshot keeps
/// its nodes pinned until the session is dropped.
pub struct Snapshot {
    backend: &'static str,
    /// The [`Session::id`] this snapshot belongs to — symbolic snapshots
    /// hold manager-internal handles that are meaningless anywhere else.
    session_id: u64,
    gates_applied: usize,
    /// The result-cache state flags at capture time, restored alongside the
    /// backend state so a restored session keeps (or regains) its cache
    /// eligibility.
    pristine: bool,
    state_fingerprint: Option<u128>,
    inner: SnapshotInner,
}

/// A simulation session owning one backend.
///
/// ```
/// use sliq_exec::{Session, SessionConfig, BackendKind};
/// use sliq_circuit::Circuit;
///
/// let mut circuit = Circuit::new(2);
/// circuit.h(0).cx(0, 1);
/// // Auto picks the stabilizer backend: the circuit is Clifford-only.
/// let mut session = Session::for_circuit(&circuit, SessionConfig::default())?;
/// assert_eq!(session.kind(), BackendKind::Stabilizer);
/// session.run(&circuit)?;
/// // 1000 measurement shots from the one simulated state.
/// let sample = session.sample(1000, 42)?;
/// assert_eq!(sample.histogram.count_of(0b00) + sample.histogram.count_of(0b11), 1000);
/// # Ok::<(), sliq_exec::ExecError>(())
/// ```
pub struct Session {
    kind: BackendKind,
    /// Process-unique id tying snapshots to the session that took them.
    id: u64,
    inner: Inner,
    config: SessionConfig,
    num_qubits: usize,
    gates_applied: usize,
    /// Memoised outcome trie for repeated [`Session::sample`] calls on an
    /// unchanged bit-sliced state (conditioned views + SAT-count
    /// probabilities); dropped on any state mutation.
    sample_cache: Option<sample::SampleCache>,
    /// The attached circuit-level result cache, if any (see [`crate::cache`]
    /// for the keying and soundness argument).
    result_cache: Option<Arc<ResultCache>>,
    /// `true` while the backend state is provably `|0…0⟩` with no gate,
    /// measurement or raw-backend access since construction (or since a
    /// restore to a pristine checkpoint).  [`Session::run`] consults the
    /// result cache only in this state.
    pristine: bool,
    /// When the current state is known to be exactly "one `run(C)` applied
    /// to `|0…0⟩`", the canonical fingerprint of `C` — the key under which
    /// [`Session::sample`] may consult the result cache.  Cleared by any
    /// state mutation outside that shape.
    state_fingerprint: Option<u128>,
    /// A run served from the cache leaves the backend untouched; the
    /// circuit is parked here and replayed lazily by [`Session::materialize`]
    /// on the first state-dependent operation.
    pending_replay: Option<Circuit>,
}

/// Source of process-unique session ids.
static NEXT_SESSION_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Interprets a whole circuit — including the dynamic operations
/// [`Gate::Measure`], [`Gate::Reset`] and [`Gate::Conditional`], which no
/// backend implements natively — against a backend, returning the number of
/// operations executed and the final classical register (`None` for static
/// circuits).
///
/// Dynamic operations consume randomness from a private
/// `StdRng::seed_from_u64(measurement_seed)` stream, one draw per
/// measurement or reset *in program order regardless of outcome*, so the
/// trajectory is a deterministic function of circuit × seed: two backends
/// computing the same probabilities collapse identically under the same
/// seed, and a cache-hit replay with the same seed reproduces the published
/// trajectory exactly.
fn interpret_circuit(
    sim: &mut dyn Simulator,
    circuit: &Circuit,
    measurement_seed: u64,
) -> Result<(usize, Option<Vec<bool>>), ExecError> {
    if !circuit.is_dynamic() {
        let mut gates = 0usize;
        for gate in circuit.iter() {
            sim.apply_gate(gate)?;
            gates += 1;
        }
        return Ok((gates, None));
    }
    // Dynamic interpretation indexes the classical register, so the clbit
    // ranges must be validated before touching the backend.
    circuit.validate()?;
    let mut creg = vec![false; circuit.num_clbits()];
    let mut rng = StdRng::seed_from_u64(measurement_seed);
    let mut ops = 0usize;
    for gate in circuit.iter() {
        match gate {
            Gate::Measure { qubit, clbit } => {
                let u = rng.gen_range(0.0..1.0);
                creg[*clbit] = sim.measure_with(*qubit, u);
            }
            Gate::Reset { qubit } => {
                let u = rng.gen_range(0.0..1.0);
                if sim.measure_with(*qubit, u) {
                    sim.apply_gate(&Gate::X(*qubit))?;
                }
            }
            Gate::Conditional {
                offset,
                width,
                value,
                gate,
            } => {
                let mut current = 0u64;
                for j in 0..*width {
                    if creg[offset + j] {
                        current |= 1 << j;
                    }
                }
                if current == *value {
                    sim.apply_gate(gate)?;
                }
            }
            unitary => sim.apply_gate(unitary)?,
        }
        ops += 1;
    }
    Ok((ops, Some(creg)))
}

impl Session {
    /// Opens a session over `num_qubits` qubits with an explicit backend.
    /// [`BackendKind::Auto`] falls back to the bit-sliced backend here —
    /// without a circuit there is nothing to negotiate against; use
    /// [`Session::for_circuit`] for capability-based selection.
    pub fn new(num_qubits: usize, config: SessionConfig) -> Result<Self, ExecError> {
        let kind = match config.backend {
            BackendKind::Auto => BackendKind::BitSlice,
            concrete => concrete,
        };
        kind.check_capacity(num_qubits, config.max_bytes)?;
        let inner = match kind {
            BackendKind::BitSlice => {
                let mut sim = BitSliceSimulator::new(num_qubits)
                    .with_limits(BitSliceLimits {
                        max_nodes: config.max_nodes,
                        max_bytes: config.max_bytes,
                    })
                    .with_auto_reorder(config.auto_reorder);
                if let Some(threads) = config.threads {
                    sim = sim.with_threads(threads);
                }
                if config.force_shared_kernel {
                    sim = sim.with_kernel_mode(sliq_bdd::KernelMode::Shared);
                }
                Inner::BitSlice(Box::new(sim))
            }
            BackendKind::Qmdd => Inner::Qmdd(Box::new(QmddSimulator::new(num_qubits).with_limits(
                QmddLimits {
                    max_nodes: config.max_nodes,
                },
            ))),
            BackendKind::Dense => Inner::Dense(Box::new(DenseSimulator::new(num_qubits))),
            BackendKind::Stabilizer => {
                Inner::Stabilizer(Box::new(StabilizerSimulator::new(num_qubits)))
            }
            BackendKind::Auto => unreachable!("resolved above"),
        };
        Ok(Self {
            kind,
            id: NEXT_SESSION_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            inner,
            config,
            num_qubits,
            gates_applied: 0,
            sample_cache: None,
            result_cache: config
                .use_result_cache
                .then(|| ResultCache::global().clone()),
            pristine: true,
            state_fingerprint: None,
            pending_replay: None,
        })
    }

    /// Attaches a result cache (replacing any earlier attachment, including
    /// the global one selected by [`SessionConfig::use_result_cache`]).
    /// Sharing one cache across sessions — and threads — is the intended
    /// use; see [`crate::cache`].
    pub fn attach_result_cache(&mut self, cache: Arc<ResultCache>) {
        self.result_cache = Some(cache);
    }

    /// The attached result cache, if any.
    pub fn result_cache(&self) -> Option<&Arc<ResultCache>> {
        self.result_cache.as_ref()
    }

    /// Replays a cache-hit circuit into the backend, if one is pending.
    /// Called by every state-dependent operation, so callers never observe
    /// the unmaterialised backend.  Gate counters are untouched — the hit
    /// already accounted for them.
    ///
    /// Replay cannot fail: the `max_nodes` and `max_bytes` budgets are part
    /// of the run cache key, so a hit implies the publishing session
    /// completed this exact circuit under the same limits from the same
    /// initial state.  Dynamic circuits replay through the same seeded
    /// interpreter (the measurement seed is part of the run cache key), so
    /// the replayed trajectory is bit-identical to the published one.
    fn materialize(&mut self) {
        if let Some(circuit) = self.pending_replay.take() {
            let seed = self.config.measurement_seed;
            interpret_circuit(self.sim(), &circuit, seed)
                .expect("cached-run replay exceeded the budget its publisher ran under");
        }
    }

    /// The run-entry cache key for this session's configuration.
    fn run_key(&self, fingerprint: u128) -> CacheKey {
        CacheKey::run(
            fingerprint,
            self.kind,
            self.config.collect_expectations,
            self.config.auto_reorder,
            self.config.max_nodes,
            self.config.max_bytes,
        )
    }

    /// Drops the memoised sampling trie (unpinning its views).  Called by
    /// every state-mutating path; cheap no-op when no cache exists.
    fn invalidate_sample_cache(&mut self) {
        if let Some(cache) = self.sample_cache.take() {
            if let Inner::BitSlice(s) = &mut self.inner {
                cache.release(s.state_mut());
            }
        }
    }

    /// Opens a session negotiated for `circuit`: resolves
    /// [`BackendKind::Auto`] (stabilizer for Clifford-only circuits,
    /// bit-sliced otherwise) and fails fast with the capability verdict if
    /// the requested backend cannot serve the circuit.  Does **not** run the
    /// circuit; call [`Session::run`] next.
    pub fn for_circuit(circuit: &Circuit, config: SessionConfig) -> Result<Self, ExecError> {
        config.backend.check_circuit(circuit)?;
        let resolved = config.backend.resolve(circuit);
        Self::new(
            circuit.num_qubits(),
            SessionConfig {
                backend: resolved,
                ..config
            },
        )
    }

    /// The concrete backend this session owns.
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    /// The backend's `Simulator::name`.
    pub fn backend_name(&self) -> &'static str {
        self.kind.name()
    }

    /// The session's qubit count.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Total gates applied over the session's lifetime (rolled back by
    /// [`Session::restore`]).
    pub fn gates_applied(&self) -> usize {
        self.gates_applied
    }

    fn sim(&mut self) -> &mut dyn Simulator {
        match &mut self.inner {
            Inner::BitSlice(s) => s.as_mut(),
            Inner::Dense(s) => s.as_mut(),
            Inner::Qmdd(s) => s.as_mut(),
            Inner::Stabilizer(s) => s.as_mut(),
        }
    }

    /// Applies a single gate (streaming interface).  Streaming makes the
    /// state an arbitrary composition, so it permanently disqualifies the
    /// session from result-cache lookups (the cache only describes whole
    /// circuits applied to `|0…0⟩`).
    ///
    /// Dynamic operations are rejected here: they need the classical
    /// register and the seeded measurement stream that only whole-circuit
    /// execution carries.  Run them through [`Session::run`], or collapse
    /// qubits directly with [`Session::measure_with`].
    pub fn apply_gate(&mut self, gate: &Gate) -> Result<(), ExecError> {
        if gate.is_dynamic() {
            return Err(ExecError::Unsupported {
                backend: self.kind.name(),
                what: format!(
                    "streaming the dynamic operation `{gate}` (run it inside a circuit \
                     via Session::run, or use Session::measure_with)"
                ),
            });
        }
        self.materialize();
        self.pristine = false;
        self.state_fingerprint = None;
        self.invalidate_sample_cache();
        self.sim().apply_gate(gate)?;
        self.gates_applied += 1;
        Ok(())
    }

    /// Applies every gate of `circuit` and returns a structured
    /// [`RunResult`] (timing, total probability, representation statistics,
    /// optional per-qubit ⟨Z⟩ expectations).
    ///
    /// Dynamic circuits — those containing [`Gate::Measure`],
    /// [`Gate::Reset`] or [`Gate::Conditional`] — are interpreted by the
    /// session: measurements collapse the state through the backend's
    /// `measure_with`, outcomes land in a classical register returned as
    /// [`RunResult::readout`], and conditioned gates fire on the live
    /// register contents.  The whole trajectory is a deterministic function
    /// of circuit × [`SessionConfig::measurement_seed`].
    ///
    /// With a result cache attached and the session still pristine, the
    /// call first consults the cache under the circuit's canonical
    /// fingerprint: a hit returns the memoised result with **zero backend
    /// simulation** (the circuit is replayed lazily only if a later
    /// operation needs the concrete state); a miss simulates and publishes.
    /// A cached result carries its publisher's `stats` and timing-free
    /// counters verbatim, with `elapsed` rewritten to the lookup time.
    pub fn run(&mut self, circuit: &Circuit) -> Result<RunResult, ExecError> {
        if circuit.num_qubits() != self.num_qubits {
            return Err(ExecError::QubitMismatch {
                session: self.num_qubits,
                circuit: circuit.num_qubits(),
            });
        }
        // Soundness gate: only a pristine session may consult or publish —
        // a cached entry describes `circuit` applied to `|0…0⟩` and nothing
        // else (see `crate::cache`).  Dynamic circuits are keyed by
        // circuit × measurement seed: different seeds take different
        // measurement trajectories and must never share an entry.
        let consulted = if self.pristine {
            self.result_cache.clone().map(|c| {
                let fingerprint = cache::circuit_fingerprint(circuit);
                let fingerprint = if circuit.is_dynamic() {
                    cache::dynamic_fingerprint(fingerprint, self.config.measurement_seed)
                } else {
                    fingerprint
                };
                (c, fingerprint)
            })
        } else {
            None
        };
        if let Some((cache, fingerprint)) = &consulted {
            let lookup = Instant::now();
            if let Some(entry) = cache.get_run(self.run_key(*fingerprint)) {
                self.invalidate_sample_cache();
                self.pristine = false;
                self.state_fingerprint = Some(*fingerprint);
                self.pending_replay = Some(circuit.clone());
                self.gates_applied += entry.gates_applied;
                let mut result = RunResult::clone(&entry);
                result.elapsed = lookup.elapsed();
                return Ok(result);
            }
        }
        let collect_expectations = self.collect_expectations_enabled();
        self.materialize();
        self.pristine = false;
        self.state_fingerprint = None;
        self.invalidate_sample_cache();
        let start = Instant::now();
        let seed = self.config.measurement_seed;
        let (gates, readout) = interpret_circuit(self.sim(), circuit, seed)?;
        self.gates_applied += gates;
        let total_probability = self.sim().total_probability();
        let expectations_z = if collect_expectations {
            Some(
                (0..self.num_qubits)
                    .map(|q| 1.0 - 2.0 * self.sim().probability_of_one(q))
                    .collect(),
            )
        } else {
            None
        };
        let elapsed = start.elapsed();
        let result = RunResult {
            backend: self.kind,
            gates_applied: gates,
            elapsed,
            total_probability,
            expectations_z,
            readout,
            stats: self.stats(),
        };
        if let Some((cache, fingerprint)) = consulted {
            // The run started pristine and completed: the state is exactly
            // `circuit` from `|0…0⟩`, so the result is publishable and the
            // state fingerprint is known for sample-entry lookups.
            self.state_fingerprint = Some(fingerprint);
            cache.put_run(self.run_key(fingerprint), Arc::new(result.clone()));
        }
        Ok(result)
    }

    fn collect_expectations_enabled(&self) -> bool {
        self.config.collect_expectations
    }

    /// The probability of measuring `|1⟩` on `qubit`.
    pub fn probability_of_one(&mut self, qubit: usize) -> f64 {
        self.materialize();
        self.sim().probability_of_one(qubit)
    }

    /// The probability of observing the full basis state `bits`.
    pub fn probability_of_basis_state(&mut self, bits: &[bool]) -> f64 {
        self.materialize();
        self.sim().probability_of_basis_state(bits)
    }

    /// The ⟨Z⟩ expectation of one qubit.
    pub fn expectation_z(&mut self, qubit: usize) -> f64 {
        self.materialize();
        1.0 - 2.0 * self.sim().probability_of_one(qubit)
    }

    /// The sum of all outcome probabilities.
    pub fn total_probability(&mut self) -> f64 {
        self.materialize();
        self.sim().total_probability()
    }

    /// Measures `qubit` with the supplied uniform random value, collapsing
    /// the session state (and thus ending its result-cache eligibility).
    pub fn measure_with(&mut self, qubit: usize, u: f64) -> bool {
        self.materialize();
        self.pristine = false;
        self.state_fingerprint = None;
        self.invalidate_sample_cache();
        self.sim().measure_with(qubit, u)
    }

    /// Draws `shots` full-register measurement shots from the current state
    /// **without re-simulating the circuit and without collapsing the
    /// state**; see [`crate::sample`] for the per-backend mechanics.  Shots
    /// are reproducible: the same `seed` yields the same histogram, and
    /// backends computing identical probabilities yield identical
    /// histograms under a shared seed.
    pub fn sample(&mut self, shots: u64, seed: u64) -> Result<SampleResult, ExecError> {
        if self.num_qubits > 64 {
            return Err(ExecError::Unsupported {
                backend: self.kind.name(),
                what: format!(
                    "sampling over {} qubits (outcome words hold 64)",
                    self.num_qubits
                ),
            });
        }
        // Soundness gate: sample entries describe the state "one `run(C)`
        // from `|0…0⟩`"; `state_fingerprint` is `Some` exactly then.
        let consulted = match (&self.result_cache, self.state_fingerprint) {
            (Some(cache), Some(fingerprint)) => Some((cache.clone(), fingerprint)),
            _ => None,
        };
        if let Some((cache, fingerprint)) = &consulted {
            let lookup = Instant::now();
            if let Some(histogram) =
                cache.get_sample(CacheKey::sample(*fingerprint, self.kind, shots, seed))
            {
                return Ok(SampleResult {
                    backend: self.kind,
                    shots,
                    elapsed: lookup.elapsed(),
                    histogram,
                });
            }
        }
        self.materialize();
        let start = Instant::now();
        let histogram = Arc::new(match &mut self.inner {
            Inner::BitSlice(s) => {
                sample::sample_bitslice_cached(s, &mut self.sample_cache, shots, seed)
            }
            Inner::Dense(s) => sample::sample_dense(s, shots, seed),
            Inner::Qmdd(s) => sample::sample_qmdd(s, shots, seed),
            Inner::Stabilizer(s) => sample::sample_stabilizer(s, shots, seed),
        });
        let elapsed = start.elapsed();
        if let Some((cache, fingerprint)) = consulted {
            // Sampling never collapses the state, so the fingerprint is
            // still valid and the histogram is publishable.
            cache.put_sample(
                CacheKey::sample(fingerprint, self.kind, shots, seed),
                histogram.clone(),
            );
        }
        Ok(SampleResult {
            backend: self.kind,
            shots,
            elapsed,
            histogram,
        })
    }

    /// Captures a checkpoint of the session state.
    pub fn snapshot(&mut self) -> Snapshot {
        self.materialize();
        let inner = match &mut self.inner {
            Inner::BitSlice(s) => SnapshotInner::BitSlice(s.snapshot()),
            Inner::Dense(s) => SnapshotInner::Dense(s.snapshot()),
            Inner::Qmdd(s) => SnapshotInner::Qmdd(s.snapshot()),
            Inner::Stabilizer(s) => SnapshotInner::Stabilizer(Box::new(s.snapshot())),
        };
        Snapshot {
            backend: self.kind.name(),
            session_id: self.id,
            gates_applied: self.gates_applied,
            pristine: self.pristine,
            state_fingerprint: self.state_fingerprint,
            inner,
        }
    }

    /// Rolls the session back to `snapshot` (which stays valid for further
    /// restores until [`Session::discard`]).  The snapshot must come from
    /// *this* session: symbolic snapshots hold manager-internal handles, so
    /// restoring one into any other session — even of the same backend kind
    /// — is rejected rather than silently corrupting state.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<(), ExecError> {
        if snapshot.session_id != self.id {
            return Err(ExecError::ForeignSnapshot {
                backend: self.kind.name(),
            });
        }
        self.invalidate_sample_cache();
        match (&mut self.inner, &snapshot.inner) {
            (Inner::BitSlice(s), SnapshotInner::BitSlice(snap)) => s.restore(snap),
            (Inner::Dense(s), SnapshotInner::Dense(snap)) => s.restore(snap),
            (Inner::Qmdd(s), SnapshotInner::Qmdd(snap)) => s.restore(snap),
            (Inner::Stabilizer(s), SnapshotInner::Stabilizer(snap)) => s.restore(snap),
            _ => {
                return Err(ExecError::SnapshotMismatch {
                    session: self.kind.name(),
                    snapshot: snapshot.backend,
                })
            }
        }
        self.gates_applied = snapshot.gates_applied;
        // The backend now holds the checkpoint state, so any unmaterialised
        // cache-hit replay is obsolete, and the cache flags are exactly
        // those captured with the checkpoint (snapshots materialise first).
        self.pending_replay = None;
        self.pristine = snapshot.pristine;
        self.state_fingerprint = snapshot.state_fingerprint;
        Ok(())
    }

    /// Releases a checkpoint (unpinning symbolic-backend roots).  Fails on
    /// a snapshot from another session — its pins index that session's
    /// manager, so releasing them here would unpin the wrong nodes.
    pub fn discard(&mut self, snapshot: Snapshot) -> Result<(), ExecError> {
        if snapshot.session_id != self.id {
            return Err(ExecError::ForeignSnapshot {
                backend: self.kind.name(),
            });
        }
        match (&mut self.inner, snapshot.inner) {
            (Inner::BitSlice(s), SnapshotInner::BitSlice(snap)) => s.release_snapshot(snap),
            (Inner::Qmdd(s), SnapshotInner::Qmdd(snap)) => s.release(snap),
            // Dense / stabilizer snapshots are plain copies; dropping frees
            // them.  (Kind mismatch with a matching session id cannot occur:
            // the id pins the snapshot to this very session.)
            _ => {}
        }
        Ok(())
    }

    /// Current representation statistics (node counts, memory estimate and
    /// — on the bit-sliced backend — the full BDD kernel counters).
    pub fn stats(&self) -> ExecStats {
        const MIB: f64 = 1024.0 * 1024.0;
        let mut stats = match &self.inner {
            Inner::BitSlice(s) => {
                let kernel = s.state().manager().stats();
                ExecStats {
                    live_nodes: Some(s.node_count()),
                    peak_nodes: Some(kernel.peak_nodes),
                    // The kernel tracks its exact footprint (arena +
                    // subtables + op caches), so no estimate is needed.
                    memory_mib: kernel.peak_bytes as f64 / MIB,
                    bdd: Some(kernel),
                    result_cache: None,
                }
            }
            Inner::Qmdd(s) => {
                let bytes = self
                    .kind
                    .capabilities()
                    .bytes_per_node
                    .expect("qmdd has a node memory model");
                ExecStats {
                    live_nodes: Some(s.node_count()),
                    peak_nodes: Some(s.peak_nodes()),
                    memory_mib: s.peak_nodes() as f64 * bytes / MIB,
                    bdd: None,
                    result_cache: None,
                }
            }
            Inner::Dense(_) => ExecStats {
                live_nodes: None,
                peak_nodes: None,
                memory_mib: (1u64 << self.num_qubits) as f64 * 16.0 / MIB,
                bdd: None,
                result_cache: None,
            },
            Inner::Stabilizer(_) => ExecStats {
                live_nodes: None,
                peak_nodes: None,
                memory_mib: (2 * self.num_qubits * self.num_qubits) as f64 * 2.0 / MIB,
                bdd: None,
                result_cache: None,
            },
        };
        stats.result_cache = self.result_cache.as_ref().map(|c| c.stats());
        stats
    }

    /// Raw-backend access hands out `&mut`: the caller can mutate the state
    /// arbitrarily, so every memoised view of it must be dropped and the
    /// session permanently loses result-cache eligibility.
    fn on_raw_access(&mut self) {
        self.materialize();
        self.pristine = false;
        self.state_fingerprint = None;
        self.invalidate_sample_cache();
    }

    /// The underlying bit-sliced simulator, when that is the owned backend
    /// (for backend-specific features: exact amplitudes, manual reordering).
    pub fn bitslice_mut(&mut self) -> Option<&mut BitSliceSimulator> {
        self.on_raw_access();
        match &mut self.inner {
            Inner::BitSlice(s) => Some(s),
            _ => None,
        }
    }

    /// The underlying dense simulator, when that is the owned backend.
    pub fn dense_mut(&mut self) -> Option<&mut DenseSimulator> {
        self.on_raw_access();
        match &mut self.inner {
            Inner::Dense(s) => Some(s),
            _ => None,
        }
    }

    /// The underlying QMDD simulator, when that is the owned backend.
    pub fn qmdd_mut(&mut self) -> Option<&mut QmddSimulator> {
        self.on_raw_access();
        match &mut self.inner {
            Inner::Qmdd(s) => Some(s),
            _ => None,
        }
    }

    /// The underlying stabilizer simulator, when that is the owned backend.
    pub fn stabilizer_mut(&mut self) -> Option<&mut StabilizerSimulator> {
        self.on_raw_access();
        match &mut self.inner {
            Inner::Stabilizer(s) => Some(s),
            _ => None,
        }
    }
}
