//! The canonical-circuit result cache: memoised [`RunResult`]s and sampling
//! histograms behind a stable circuit fingerprint.
//!
//! Under serving-style traffic most requests are the *same few circuits*;
//! the fastest simulation is the one that never runs.  This module provides
//! [`ResultCache`], a byte-budgeted, LRU-evicting store that a
//! [`crate::Session`] consults before simulating:
//!
//! * **run entries** — the full [`RunResult`] of executing a circuit from
//!   the all-zero initial state, shared behind an [`Arc`];
//! * **sample entries** — the [`Histogram`] of a `(shots, seed)` batched
//!   sampling call on that state, shared behind an [`Arc`] so a hit never
//!   deep-copies the outcome counts.
//!
//! # Keying
//!
//! Entries are keyed by a **128-bit fingerprint of the canonical circuit**
//! ([`circuit_fingerprint`]): the circuit is first normalised by the
//! peephole rewriter ([`sliq_circuit::optimize`], iterated to a fixed point,
//! so circuits differing only by redundant gate pairs share an entry), then
//! the qubit count, gate count and every gate — tag plus operand list — are
//! folded through a 128-bit FNV-1a hash.  The fingerprint is combined with
//! every *result-affecting* configuration knob:
//!
//! * the **concrete backend** (after `Auto` resolution) — float backends
//!   drift differently from exact ones, so they never share entries;
//! * for run entries: the ⟨Z⟩-expectation flag (it changes the payload),
//!   the auto-reorder flag and the node limit (they change the *statistics*
//!   and whether the run completes at all — a session with a smaller node
//!   budget must not be served a result it could not have computed, because
//!   a later state query would replay the circuit under its own limits);
//! * for sample entries: the exact shot count and seed (the histogram is a
//!   deterministic function of state × shots × seed);
//! * for **dynamic circuits** (mid-circuit measurement, reset,
//!   feed-forward): the measurement seed, mixed into the fingerprint by
//!   [`dynamic_fingerprint`] — the readout and the post-run state are a
//!   deterministic function of circuit × seed, so two runs of the same
//!   dynamic circuit under different seeds must never share an entry.
//!
//! Thread count and kernel flavour are deliberately **not** part of the key:
//! the parallel-equivalence suite proves results are bit-identical at every
//! thread count.  Statistics embedded in a cached [`RunResult`] are those of
//! the *publishing* run (its kernel mode, node counts, timings); a hit
//! returns them verbatim with only `elapsed` rewritten to the lookup time.
//!
//! # Soundness
//!
//! A cached entry describes "circuit `C` applied to `|0…0⟩`".  The session
//! layer therefore only consults the cache when that is provably the state:
//!
//! * `run` consults only while the session is **pristine** — freshly
//!   constructed (or restored to a pristine checkpoint) with no gate,
//!   measurement or raw-backend access in between; the first `run`, hit or
//!   miss, clears the flag.
//! * `sample` consults only while the current state is known to be exactly
//!   "one `run(C)` from pristine" (tracked as the session's state
//!   fingerprint); any streamed gate, measurement, restore or raw-backend
//!   access clears it.
//!
//! Streamed `apply_gate` sessions therefore never hit the cache, and a
//! cached result can never be served for a mutated state.  On a `run` hit
//! the backend state is *not* materialised (that is the whole point); the
//! session records the circuit and replays it lazily on the first
//! state-dependent query, so the hit path of a run-then-sample request does
//! zero simulation while probability queries remain exact.
//!
//! Memory is bounded: every insertion is charged an approximate byte size
//! (struct size + expectation vector for run entries, struct size + outcome
//! count for sample entries, plus fixed key/bookkeeping overhead), and the
//! least-recently-used entries are evicted until the configured budget
//! holds.  Hits, misses, insertions, evictions, entry count and resident
//! bytes are observable through [`ResultCache::stats`] and flow into
//! [`crate::ExecStats`] and the bench harness's `tables -- cache` report.

use crate::backend::BackendKind;
use crate::sample::Histogram;
use crate::session::RunResult;
use sliq_circuit::{optimize, Circuit, Gate};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, OnceLock};

// ---------------------------------------------------------------------- //
// Canonical circuit fingerprint
// ---------------------------------------------------------------------- //

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Incremental 128-bit FNV-1a hasher over an explicit byte encoding.
///
/// Hand-rolled (rather than `std::hash`) so the fingerprint is a *stable*
/// function of the circuit alone — independent of `SipHash` keys, compiler
/// version and platform — which makes cache keys meaningful across
/// processes and in persisted bench snapshots.
struct Fnv128(u128);

impl Fnv128 {
    fn new() -> Self {
        Self(FNV_OFFSET)
    }

    fn write_u8(&mut self, byte: u8) {
        self.0 = (self.0 ^ u128::from(byte)).wrapping_mul(FNV_PRIME);
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }
}

/// Folds one gate into the fingerprint: a tag byte, then the operands.
/// Variable-length operand lists are length-prefixed so `Toffoli{[1,2],3}`
/// can never collide with `Toffoli{[1],2}… ` shifted encodings.
fn write_gate(h: &mut Fnv128, gate: &Gate) {
    match gate {
        Gate::X(q) => {
            h.write_u8(1);
            h.write_usize(*q);
        }
        Gate::Y(q) => {
            h.write_u8(2);
            h.write_usize(*q);
        }
        Gate::Z(q) => {
            h.write_u8(3);
            h.write_usize(*q);
        }
        Gate::H(q) => {
            h.write_u8(4);
            h.write_usize(*q);
        }
        Gate::S(q) => {
            h.write_u8(5);
            h.write_usize(*q);
        }
        Gate::Sdg(q) => {
            h.write_u8(6);
            h.write_usize(*q);
        }
        Gate::T(q) => {
            h.write_u8(7);
            h.write_usize(*q);
        }
        Gate::Tdg(q) => {
            h.write_u8(8);
            h.write_usize(*q);
        }
        Gate::RxPi2(q) => {
            h.write_u8(9);
            h.write_usize(*q);
        }
        Gate::RyPi2(q) => {
            h.write_u8(10);
            h.write_usize(*q);
        }
        Gate::Cnot { control, target } => {
            h.write_u8(11);
            h.write_usize(*control);
            h.write_usize(*target);
        }
        Gate::Cz { control, target } => {
            h.write_u8(12);
            h.write_usize(*control);
            h.write_usize(*target);
        }
        Gate::Toffoli { controls, target } => {
            h.write_u8(13);
            h.write_usize(controls.len());
            for c in controls {
                h.write_usize(*c);
            }
            h.write_usize(*target);
        }
        Gate::Fredkin {
            controls,
            target1,
            target2,
        } => {
            h.write_u8(14);
            h.write_usize(controls.len());
            for c in controls {
                h.write_usize(*c);
            }
            h.write_usize(*target1);
            h.write_usize(*target2);
        }
        Gate::Measure { qubit, clbit } => {
            h.write_u8(15);
            h.write_usize(*qubit);
            h.write_usize(*clbit);
        }
        Gate::Reset { qubit } => {
            h.write_u8(16);
            h.write_usize(*qubit);
        }
        Gate::Conditional {
            offset,
            width,
            value,
            gate,
        } => {
            h.write_u8(17);
            h.write_usize(*offset);
            h.write_usize(*width);
            h.write_u64(*value);
            write_gate(h, gate);
        }
    }
}

/// The stable 128-bit fingerprint of a circuit's **canonical form**.
///
/// The circuit is normalised with [`sliq_circuit::optimize`] (inverse-pair
/// cancellation and phase merging, iterated to a fixed point) before
/// hashing, so circuits that differ only by redundant gate pairs map to the
/// same fingerprint — and thus share result-cache entries:
///
/// ```
/// use sliq_circuit::Circuit;
/// use sliq_exec::cache::circuit_fingerprint;
///
/// let mut plain = Circuit::new(2);
/// plain.h(0).cx(0, 1).t(1);
/// let mut padded = Circuit::new(2);
/// padded.h(0).x(1).x(1).cx(0, 1).t(1);
/// assert_eq!(circuit_fingerprint(&plain), circuit_fingerprint(&padded));
/// ```
pub fn circuit_fingerprint(circuit: &Circuit) -> u128 {
    let (canonical, _) = optimize(circuit);
    let mut h = Fnv128::new();
    h.write_usize(canonical.num_qubits());
    h.write_usize(canonical.num_clbits());
    h.write_usize(canonical.len());
    for gate in canonical.iter() {
        write_gate(&mut h, gate);
    }
    h.0
}

/// Mixes a measurement seed into a dynamic circuit's fingerprint.
///
/// A dynamic circuit's [`RunResult`] (readout, collapse trajectory, final
/// state) is a deterministic function of circuit × measurement seed, so the
/// seed must participate in the cache key — the same way `(shots, seed)`
/// already key sample entries.  Static circuits never call this, keeping
/// their keys (and previously published cache entries) unchanged.
pub fn dynamic_fingerprint(fingerprint: u128, measurement_seed: u64) -> u128 {
    let mut h = Fnv128::new();
    for byte in fingerprint.to_le_bytes() {
        h.write_u8(byte);
    }
    h.write_u64(measurement_seed);
    h.0
}

// ---------------------------------------------------------------------- //
// Cache keys and values
// ---------------------------------------------------------------------- //

/// The result-kind half of a cache key (see the module docs for why each
/// knob participates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum KeyKind {
    /// A whole-circuit [`RunResult`].
    Run {
        /// Whether per-qubit ⟨Z⟩ expectations were collected.
        expectations: bool,
        /// Whether automatic variable reordering was enabled.
        auto_reorder: bool,
        /// The live-node limit the publishing session ran under.
        max_nodes: Option<usize>,
        /// The byte budget the publishing session ran under (a run that
        /// completed under a tight budget proves nothing about an
        /// unlimited one and vice versa — the budget changes which runs
        /// *fail*, so it must key the successes too).
        max_bytes: Option<usize>,
    },
    /// A batched-sampling [`Histogram`].
    Sample {
        /// Exact shot count.
        shots: u64,
        /// Exact RNG seed.
        seed: u64,
    },
}

/// A complete cache key: canonical-circuit fingerprint × concrete backend ×
/// result kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub(crate) fingerprint: u128,
    pub(crate) backend: BackendKind,
    pub(crate) kind: KeyKind,
}

impl CacheKey {
    pub(crate) fn run(
        fingerprint: u128,
        backend: BackendKind,
        expectations: bool,
        auto_reorder: bool,
        max_nodes: Option<usize>,
        max_bytes: Option<usize>,
    ) -> Self {
        Self {
            fingerprint,
            backend,
            kind: KeyKind::Run {
                expectations,
                auto_reorder,
                max_nodes,
                max_bytes,
            },
        }
    }

    pub(crate) fn sample(fingerprint: u128, backend: BackendKind, shots: u64, seed: u64) -> Self {
        Self {
            fingerprint,
            backend,
            kind: KeyKind::Sample { shots, seed },
        }
    }
}

/// A stored payload: both variants are `Arc`-shared so hits clone a pointer,
/// never the histogram or expectation data.
#[derive(Clone)]
enum CacheValue {
    Run(Arc<RunResult>),
    Sample(Arc<Histogram>),
}

/// Fixed per-entry overhead charged on top of the payload estimate: the key,
/// the hash-map slot and the recency-index node.
const ENTRY_OVERHEAD_BYTES: usize = 96;

fn value_bytes(value: &CacheValue) -> usize {
    let payload = match value {
        CacheValue::Run(result) => {
            std::mem::size_of::<RunResult>()
                + result
                    .expectations_z
                    .as_ref()
                    .map_or(0, |v| v.len() * std::mem::size_of::<f64>())
                + result.readout.as_ref().map_or(0, |v| v.len())
        }
        CacheValue::Sample(histogram) => histogram.approx_bytes(),
    };
    payload + ENTRY_OVERHEAD_BYTES
}

// ---------------------------------------------------------------------- //
// Counters
// ---------------------------------------------------------------------- //

/// A point-in-time snapshot of a [`ResultCache`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Lookups that returned a cached result.
    pub hits: u64,
    /// Lookups that found nothing (the caller then simulates and publishes).
    pub misses: u64,
    /// Entries published (including replacements of an existing key).
    pub insertions: u64,
    /// Entries evicted to keep the byte budget.
    pub evictions: u64,
    /// Resident entries.
    pub entries: usize,
    /// Approximate resident bytes (payload estimates plus fixed per-entry
    /// overhead).
    pub bytes: usize,
    /// The configured byte budget.
    pub capacity_bytes: usize,
    /// `false` when the cache is disabled (zero byte budget, e.g.
    /// `SLIQ_RESULT_CACHE_MB=0`): lookups and publishes are no-ops and no
    /// counters move.
    pub enabled: bool,
}

impl ResultCacheStats {
    /// Fraction of lookups served from the cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

// ---------------------------------------------------------------------- //
// The cache
// ---------------------------------------------------------------------- //

struct Entry {
    value: CacheValue,
    bytes: usize,
    /// The entry's position in the recency index (strictly increasing
    /// logical time; refreshed on every touch).
    tick: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<CacheKey, Entry>,
    /// Exact LRU order: logical tick → key, oldest first.  Every touch
    /// re-files the entry under a fresh tick, so `pop_first` is the LRU
    /// victim in O(log n).
    recency: BTreeMap<u64, CacheKey>,
    next_tick: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl Inner {
    fn touch(&mut self, key: CacheKey) {
        let tick = self.next_tick;
        self.next_tick += 1;
        if let Some(entry) = self.map.get_mut(&key) {
            self.recency.remove(&entry.tick);
            entry.tick = tick;
            self.recency.insert(tick, key);
        }
    }

    fn remove(&mut self, key: &CacheKey) -> Option<Entry> {
        let entry = self.map.remove(key)?;
        self.recency.remove(&entry.tick);
        self.bytes -= entry.bytes;
        Some(entry)
    }

    /// Evicts least-recently-used entries until the byte budget holds.  The
    /// freshly inserted entry is not exempt: an entry larger than the whole
    /// budget is evicted immediately, keeping the bound unconditional.
    fn evict_to(&mut self, capacity: usize) {
        while self.bytes > capacity {
            let Some((&tick, &key)) = self.recency.iter().next() else {
                break;
            };
            self.recency.remove(&tick);
            if let Some(entry) = self.map.remove(&key) {
                self.bytes -= entry.bytes;
                self.evictions += 1;
            }
        }
    }
}

/// A byte-budgeted, LRU-evicting store of memoised run results and sampling
/// histograms, keyed by canonical-circuit fingerprints (see the module docs
/// for the keying and soundness argument).
///
/// The cache is internally synchronised; share one instance across sessions
/// (and threads) with [`Arc`].  [`ResultCache::global`] is the process-wide
/// instance that [`crate::SessionConfig::use_result_cache`] attaches.
///
/// ```
/// use sliq_circuit::Circuit;
/// use sliq_exec::{ResultCache, Session, SessionConfig};
///
/// let cache = ResultCache::shared(16 * 1024 * 1024);
/// let mut circuit = Circuit::new(3);
/// circuit.h(0).cx(0, 1).cx(1, 2).t(2);
///
/// // Cold: simulates, then publishes.
/// let mut cold = Session::for_circuit(&circuit, SessionConfig::default())?;
/// cold.attach_result_cache(cache.clone());
/// let cold_run = cold.run(&circuit)?;
///
/// // Warm: a fresh session over the same cache serves the run and the
/// // histogram without simulating anything.
/// let mut warm = Session::for_circuit(&circuit, SessionConfig::default())?;
/// warm.attach_result_cache(cache.clone());
/// let warm_run = warm.run(&circuit)?;
/// assert_eq!(warm_run.total_probability, cold_run.total_probability);
/// assert_eq!(cache.stats().hits, 1);
/// # Ok::<(), sliq_exec::ExecError>(())
/// ```
pub struct ResultCache {
    capacity_bytes: usize,
    inner: Mutex<Inner>,
}

impl ResultCache {
    /// Creates a cache with the given byte budget.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            capacity_bytes,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Creates an [`Arc`]-shared cache with the given byte budget (the form
    /// sessions attach).
    pub fn shared(capacity_bytes: usize) -> Arc<Self> {
        Arc::new(Self::new(capacity_bytes))
    }

    /// The process-wide cache instance.
    ///
    /// Its byte budget defaults to 256 MiB and can be overridden with the
    /// `SLIQ_RESULT_CACHE_MB` environment variable (read once, at first
    /// use).  `SLIQ_RESULT_CACHE_MB=0` disables the cache outright: every
    /// lookup and publish is a counter-free no-op, so sessions pay no LRU
    /// churn for a cache that can hold nothing.
    pub fn global() -> &'static Arc<ResultCache> {
        static GLOBAL: OnceLock<Arc<ResultCache>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let mib = std::env::var("SLIQ_RESULT_CACHE_MB")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(256);
            ResultCache::shared(mib * 1024 * 1024)
        })
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// `false` when the byte budget is zero: the cache is disabled, and
    /// [`ResultCache::stats`] reports it as such.
    pub fn enabled(&self) -> bool {
        self.capacity_bytes > 0
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// `true` if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.map.clear();
        inner.recency.clear();
        inner.bytes = 0;
    }

    /// A point-in-time snapshot of the counters.
    pub fn stats(&self) -> ResultCacheStats {
        let inner = self.inner.lock().unwrap();
        ResultCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.evictions,
            entries: inner.map.len(),
            bytes: inner.bytes,
            capacity_bytes: self.capacity_bytes,
            enabled: self.enabled(),
        }
    }

    fn get(&self, key: CacheKey) -> Option<CacheValue> {
        // A disabled cache can never hold the entry; skip the lock and do
        // not count a miss — the counters describe a cache that exists.
        if !self.enabled() {
            return None;
        }
        let mut inner = self.inner.lock().unwrap();
        match inner.map.get(&key) {
            Some(entry) => {
                let value = entry.value.clone();
                inner.hits += 1;
                inner.touch(key);
                Some(value)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    fn put(&self, key: CacheKey, value: CacheValue) {
        // With a zero budget every insert would be evicted on the spot;
        // skip the churn entirely.
        if !self.enabled() {
            return;
        }
        let bytes = value_bytes(&value);
        let mut inner = self.inner.lock().unwrap();
        inner.remove(&key);
        let tick = inner.next_tick;
        inner.next_tick += 1;
        inner.map.insert(key, Entry { value, bytes, tick });
        inner.recency.insert(tick, key);
        inner.bytes += bytes;
        inner.insertions += 1;
        inner.evict_to(self.capacity_bytes);
    }

    pub(crate) fn get_run(&self, key: CacheKey) -> Option<Arc<RunResult>> {
        match self.get(key)? {
            CacheValue::Run(result) => Some(result),
            // A kind mismatch under an identical key cannot happen (the
            // kind is part of the key); treat defensively as a miss.
            CacheValue::Sample(_) => None,
        }
    }

    pub(crate) fn put_run(&self, key: CacheKey, result: Arc<RunResult>) {
        self.put(key, CacheValue::Run(result));
    }

    pub(crate) fn get_sample(&self, key: CacheKey) -> Option<Arc<Histogram>> {
        match self.get(key)? {
            CacheValue::Sample(histogram) => Some(histogram),
            CacheValue::Run(_) => None,
        }
    }

    pub(crate) fn put_sample(&self, key: CacheKey, histogram: Arc<Histogram>) {
        self.put(key, CacheValue::Sample(histogram));
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ResultCache")
            .field("capacity_bytes", &self.capacity_bytes)
            .field("entries", &stats.entries)
            .field("bytes", &stats.bytes)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("evictions", &stats.evictions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_arc(num_qubits: usize, outcomes: u64) -> Arc<Histogram> {
        let mut h = Histogram::new(num_qubits);
        for outcome in 0..outcomes {
            h.add_for_test(outcome, 1);
        }
        Arc::new(h)
    }

    #[test]
    fn fingerprint_is_stable_and_distinguishes_circuits() {
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1).t(1);
        let fp = circuit_fingerprint(&a);
        assert_eq!(fp, circuit_fingerprint(&a), "deterministic");
        // A different gate, a different operand and a different qubit count
        // all change the fingerprint.
        let mut b = Circuit::new(2);
        b.h(0).cx(0, 1).tdg(1);
        assert_ne!(fp, circuit_fingerprint(&b));
        let mut c = Circuit::new(2);
        c.h(1).cx(0, 1).t(1);
        assert_ne!(fp, circuit_fingerprint(&c));
        let mut d = Circuit::new(3);
        d.h(0).cx(0, 1).t(1);
        assert_ne!(fp, circuit_fingerprint(&d));
        // Empty circuits over different registers differ too.
        assert_ne!(
            circuit_fingerprint(&Circuit::new(2)),
            circuit_fingerprint(&Circuit::new(3))
        );
    }

    #[test]
    fn dynamic_operations_and_clbits_change_the_fingerprint() {
        let mut base = Circuit::new(2);
        base.h(0);
        let fp = circuit_fingerprint(&base);
        // A measurement, its clbit, a reset, a conditional, its condition
        // range/value and the bare classical register size all distinguish.
        let mut measured = Circuit::new(2);
        measured.h(0).measure(0, 0);
        let fp_measured = circuit_fingerprint(&measured);
        assert_ne!(fp, fp_measured);
        let mut other_clbit = Circuit::new(2);
        other_clbit.h(0).measure(0, 1);
        assert_ne!(fp_measured, circuit_fingerprint(&other_clbit));
        let mut reset = Circuit::new(2);
        reset.h(0).reset(0);
        assert_ne!(fp_measured, circuit_fingerprint(&reset));
        let mut cond = Circuit::new(2);
        cond.h(0).measure(0, 0).if_bit(0, Gate::X(1));
        let mut cond_other_value = Circuit::new(2);
        cond_other_value
            .h(0)
            .measure(0, 0)
            .conditional(0, 1, 0, Gate::X(1));
        assert_ne!(
            circuit_fingerprint(&cond),
            circuit_fingerprint(&cond_other_value)
        );
        assert_ne!(
            circuit_fingerprint(&Circuit::with_clbits(2, 1)),
            circuit_fingerprint(&Circuit::with_clbits(2, 2)),
            "clbit count participates"
        );
    }

    #[test]
    fn dynamic_fingerprint_keys_by_seed() {
        let mut c = Circuit::new(1);
        c.h(0).measure(0, 0);
        let fp = circuit_fingerprint(&c);
        assert_eq!(dynamic_fingerprint(fp, 7), dynamic_fingerprint(fp, 7));
        assert_ne!(dynamic_fingerprint(fp, 7), dynamic_fingerprint(fp, 8));
        assert_ne!(dynamic_fingerprint(fp, 7), fp);
    }

    #[test]
    fn equivalent_redundant_circuits_share_a_fingerprint() {
        let mut plain = Circuit::new(2);
        plain.h(0).cx(0, 1).t(1);
        let mut padded = Circuit::new(2);
        // Nested redundancy: the outer H·H pair only cancels after the
        // inner X·X pair is gone — exercises the fixed-point rewriting.
        padded
            .h(0)
            .h(1)
            .x(1)
            .x(1)
            .h(1)
            .cx(0, 1)
            .cx(0, 1)
            .cx(0, 1)
            .t(1);
        assert_eq!(circuit_fingerprint(&plain), circuit_fingerprint(&padded));
    }

    #[test]
    fn variable_length_operand_lists_cannot_alias() {
        // Toffoli{[1,2],3} vs Toffoli{[1],2} followed by X(3): without the
        // length prefix these encode the same operand stream.
        let mut a = Circuit::new(4);
        a.mcx(vec![1, 2], 3);
        let mut b = Circuit::new(4);
        b.mcx(vec![1], 2).x(3);
        assert_ne!(circuit_fingerprint(&a), circuit_fingerprint(&b));
    }

    #[test]
    fn lru_eviction_keeps_the_byte_budget() {
        // Budget fits roughly three of the ~5 KiB entries below.
        let entry_bytes = value_bytes(&CacheValue::Sample(sample_arc(10, 100)));
        let cache = ResultCache::new(3 * entry_bytes + entry_bytes / 2);
        for i in 0..10u64 {
            cache.put_sample(
                CacheKey::sample(i as u128, BackendKind::BitSlice, 100, i),
                sample_arc(10, 100),
            );
            assert!(
                cache.stats().bytes <= cache.capacity_bytes(),
                "budget violated after insertion {i}"
            );
        }
        let stats = cache.stats();
        assert!(stats.evictions >= 7, "{stats:?}");
        assert!(stats.entries <= 3, "{stats:?}");
        // The most recent keys survived; the oldest were evicted.
        assert!(cache
            .get_sample(CacheKey::sample(9, BackendKind::BitSlice, 100, 9))
            .is_some());
        assert!(cache
            .get_sample(CacheKey::sample(0, BackendKind::BitSlice, 100, 0))
            .is_none());
    }

    #[test]
    fn lru_get_refreshes_recency() {
        let entry_bytes = value_bytes(&CacheValue::Sample(sample_arc(4, 8)));
        let cache = ResultCache::new(2 * entry_bytes + entry_bytes / 2);
        let key = |i: u128| CacheKey::sample(i, BackendKind::Dense, 8, 0);
        cache.put_sample(key(1), sample_arc(4, 8));
        cache.put_sample(key(2), sample_arc(4, 8));
        // Touch 1, insert 3 → 2 is now the LRU victim.
        assert!(cache.get_sample(key(1)).is_some());
        cache.put_sample(key(3), sample_arc(4, 8));
        assert!(cache.get_sample(key(1)).is_some(), "touched entry survives");
        assert!(
            cache.get_sample(key(2)).is_none(),
            "untouched entry evicted"
        );
    }

    #[test]
    fn an_entry_larger_than_the_budget_does_not_stick() {
        let cache = ResultCache::new(64);
        cache.put_sample(
            CacheKey::sample(1, BackendKind::Qmdd, 1000, 0),
            sample_arc(16, 1000),
        );
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.bytes, 0);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn zero_budget_disables_the_cache_without_churn() {
        // SLIQ_RESULT_CACHE_MB=0 constructs exactly this: a zero-byte
        // budget.  No insert may land, no eviction may be counted, and
        // lookups must not count misses — the counters report "disabled",
        // not a cache that thrashes.
        let cache = ResultCache::new(0);
        assert!(!cache.enabled());
        let key = CacheKey::sample(11, BackendKind::BitSlice, 16, 3);
        assert!(cache.get_sample(key).is_none());
        cache.put_sample(key, sample_arc(4, 8));
        assert!(cache.get_sample(key).is_none());
        let stats = cache.stats();
        assert!(!stats.enabled);
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.bytes, 0);
        assert_eq!(stats.insertions, 0);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn counters_and_hit_rate() {
        let cache = ResultCache::new(1 << 20);
        let key = CacheKey::sample(7, BackendKind::Stabilizer, 32, 5);
        assert!(cache.get_sample(key).is_none());
        cache.put_sample(key, sample_arc(3, 4));
        assert!(cache.get_sample(key).is_some());
        assert!(cache.get_sample(key).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 2, "clear keeps the counters");
    }
}
