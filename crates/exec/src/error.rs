//! The unified error taxonomy of the execution layer.
//!
//! Every failure mode of every backend funnels into [`ExecError`], so
//! callers (the bench harness, examples, services) match on one enum instead
//! of per-backend error types: capability mismatches are
//! [`ExecError::Unsupported`] / [`ExecError::CapacityExceeded`], runtime
//! gate rejections are [`ExecError::Gate`], configured resource limits are
//! [`ExecError::Resource`].

use sliq_circuit::{CircuitError, SimulationError};
use std::error::Error;
use std::fmt;

/// Errors reported by the session/executor layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Capability negotiation failed: the requested backend cannot serve
    /// this workload at all (e.g. a non-Clifford circuit on the stabilizer
    /// backend, or sampling more qubits than an outcome word holds).
    Unsupported {
        /// The backend that declined.
        backend: &'static str,
        /// What was asked of it.
        what: String,
    },
    /// A hard capacity of the backend is exceeded — either up front at
    /// admission (qubit count, projected footprint) or mid-run when the
    /// configured byte budget is blown.  Distinct from
    /// [`ExecError::Unsupported`] so harnesses can report it as a
    /// memory-out rather than an error; the session stays usable and any
    /// pre-limit snapshot remains restorable.
    CapacityExceeded {
        /// The backend that declined.
        backend: &'static str,
        /// Which capacity was exceeded.
        resource: CapacityResource,
    },
    /// A gate the backend cannot represent was applied.
    Gate {
        /// The backend that rejected the gate.
        backend: &'static str,
        /// Human-readable gate description.
        gate: String,
    },
    /// A configured resource limit (live nodes, memory) was exceeded.
    Resource {
        /// The backend that hit the limit.
        backend: &'static str,
        /// Description of the limit.
        detail: String,
    },
    /// The circuit failed validation before execution started.
    Circuit(CircuitError),
    /// A circuit over a different qubit count was fed to the session.
    QubitMismatch {
        /// Qubits the session was opened with.
        session: usize,
        /// Qubits of the offending circuit.
        circuit: usize,
    },
    /// A snapshot from one backend was restored into another.
    SnapshotMismatch {
        /// The session's backend.
        session: &'static str,
        /// The snapshot's backend.
        snapshot: &'static str,
    },
    /// A snapshot from a *different session* (even of the same backend
    /// kind) was restored or discarded here; symbolic snapshots hold
    /// manager-internal handles that only their own session can interpret.
    ForeignSnapshot {
        /// The session's backend.
        backend: &'static str,
    },
}

/// The capacity that an [`ExecError::CapacityExceeded`] ran out of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityResource {
    /// The backend cannot hold this many qubits at all.
    Qubits {
        /// Requested qubit count.
        requested: usize,
        /// The backend's limit.
        limit: usize,
    },
    /// The configured byte budget was exceeded (up front by the projected
    /// footprint, or mid-run by the live structures).
    Bytes {
        /// Bytes in use (or projected) when the check fired.
        used: usize,
        /// The configured budget.
        limit: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Unsupported { backend, what } => {
                write!(f, "{backend} does not support {what}")
            }
            ExecError::CapacityExceeded { backend, resource } => match resource {
                CapacityResource::Qubits { requested, limit } => write!(
                    f,
                    "{backend} is limited to {limit} qubits ({requested} requested)"
                ),
                CapacityResource::Bytes { used, limit } => write!(
                    f,
                    "{backend} exceeded its memory budget: {used} bytes in use, limit {limit}"
                ),
            },
            ExecError::Gate { backend, gate } => {
                write!(f, "{backend} does not support gate {gate}")
            }
            ExecError::Resource { backend, detail } => {
                write!(f, "{backend} exceeded a resource limit: {detail}")
            }
            ExecError::Circuit(e) => write!(f, "invalid circuit: {e}"),
            ExecError::QubitMismatch { session, circuit } => write!(
                f,
                "session holds {session} qubits but the circuit needs {circuit}"
            ),
            ExecError::SnapshotMismatch { session, snapshot } => write!(
                f,
                "cannot restore a {snapshot} snapshot into a {session} session"
            ),
            ExecError::ForeignSnapshot { backend } => write!(
                f,
                "snapshot belongs to a different {backend} session and cannot be used here"
            ),
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimulationError> for ExecError {
    fn from(value: SimulationError) -> Self {
        match value {
            SimulationError::UnsupportedGate { backend, gate } => ExecError::Gate { backend, gate },
            SimulationError::ResourceLimit { backend, detail } => {
                ExecError::Resource { backend, detail }
            }
            SimulationError::CapacityExceeded {
                backend,
                used_bytes,
                limit_bytes,
            } => ExecError::CapacityExceeded {
                backend,
                resource: CapacityResource::Bytes {
                    used: used_bytes,
                    limit: limit_bytes,
                },
            },
            SimulationError::InvalidCircuit(e) => ExecError::Circuit(e),
        }
    }
}

impl From<CircuitError> for ExecError {
    fn from(value: CircuitError) -> Self {
        ExecError::Circuit(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_backend_and_problem() {
        let e = ExecError::Unsupported {
            backend: "stabilizer",
            what: "non-Clifford circuits".into(),
        };
        assert!(e.to_string().contains("stabilizer"));
        let e = ExecError::CapacityExceeded {
            backend: "dense",
            resource: CapacityResource::Qubits {
                requested: 40,
                limit: 30,
            },
        };
        assert!(e.to_string().contains("40"));
        assert!(e.to_string().contains("30"));
        let e = ExecError::CapacityExceeded {
            backend: "bitslice",
            resource: CapacityResource::Bytes {
                used: 2048,
                limit: 1024,
            },
        };
        assert!(e.to_string().contains("2048"));
        assert!(e.to_string().contains("memory budget"));
    }

    #[test]
    fn simulation_errors_map_onto_the_taxonomy() {
        let gate: ExecError = SimulationError::UnsupportedGate {
            backend: "stabilizer",
            gate: "t q[0]".into(),
        }
        .into();
        assert!(matches!(gate, ExecError::Gate { .. }));
        let limit: ExecError = SimulationError::ResourceLimit {
            backend: "bitslice",
            detail: "nodes".into(),
        }
        .into();
        assert!(matches!(limit, ExecError::Resource { .. }));
    }
}
