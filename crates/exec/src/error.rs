//! The unified error taxonomy of the execution layer.
//!
//! Every failure mode of every backend funnels into [`ExecError`], so
//! callers (the bench harness, examples, services) match on one enum instead
//! of per-backend error types: capability mismatches are
//! [`ExecError::Unsupported`] / [`ExecError::CapacityExceeded`], runtime
//! gate rejections are [`ExecError::Gate`], configured resource limits are
//! [`ExecError::Resource`].

use sliq_circuit::{CircuitError, SimulationError};
use std::error::Error;
use std::fmt;

/// Errors reported by the session/executor layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Capability negotiation failed: the requested backend cannot serve
    /// this workload at all (e.g. a non-Clifford circuit on the stabilizer
    /// backend, or sampling more qubits than an outcome word holds).
    Unsupported {
        /// The backend that declined.
        backend: &'static str,
        /// What was asked of it.
        what: String,
    },
    /// A hard capacity of the backend is exceeded — either up front at
    /// admission (qubit count, projected footprint) or mid-run when the
    /// configured byte budget is blown.  Distinct from
    /// [`ExecError::Unsupported`] so harnesses can report it as a
    /// memory-out rather than an error; the session stays usable and any
    /// pre-limit snapshot remains restorable.
    CapacityExceeded {
        /// The backend that declined.
        backend: &'static str,
        /// Which capacity was exceeded.
        resource: CapacityResource,
    },
    /// A gate the backend cannot represent was applied.
    Gate {
        /// The backend that rejected the gate.
        backend: &'static str,
        /// Human-readable gate description.
        gate: String,
    },
    /// A configured resource limit (live nodes, memory) was exceeded.
    Resource {
        /// The backend that hit the limit.
        backend: &'static str,
        /// Description of the limit.
        detail: String,
    },
    /// The circuit failed validation before execution started.
    Circuit(CircuitError),
    /// A circuit over a different qubit count was fed to the session.
    QubitMismatch {
        /// Qubits the session was opened with.
        session: usize,
        /// Qubits of the offending circuit.
        circuit: usize,
    },
    /// A snapshot from one backend was restored into another.
    SnapshotMismatch {
        /// The session's backend.
        session: &'static str,
        /// The snapshot's backend.
        snapshot: &'static str,
    },
    /// A snapshot from a *different session* (even of the same backend
    /// kind) was restored or discarded here; symbolic snapshots hold
    /// manager-internal handles that only their own session can interpret.
    ForeignSnapshot {
        /// The session's backend.
        backend: &'static str,
    },
}

/// The capacity that an [`ExecError::CapacityExceeded`] ran out of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityResource {
    /// The backend cannot hold this many qubits at all.
    Qubits {
        /// Requested qubit count.
        requested: usize,
        /// The backend's limit.
        limit: usize,
    },
    /// The configured byte budget was exceeded (up front by the projected
    /// footprint, or mid-run by the live structures).
    Bytes {
        /// Bytes in use (or projected) when the check fired.
        used: usize,
        /// The configured budget.
        limit: usize,
    },
}

/// The stable numeric wire codes for [`ExecError`] variants, used by
/// serving front-ends to report failures to remote clients.
///
/// Codes are part of the wire protocol (see `PROTOCOL.md` at the workspace
/// root): they never change meaning and are never reused.  Codes below 16
/// are reserved for protocol-level failures that have no [`ExecError`]
/// (malformed frames, parse rejections, load shedding); execution errors
/// start at 16.
pub mod wire {
    /// The requested backend cannot serve this workload at all.
    pub const UNSUPPORTED: u16 = 16;
    /// A hard qubit capacity was exceeded.
    pub const CAPACITY_QUBITS: u16 = 17;
    /// A byte budget was exceeded (at admission or mid-run).
    pub const CAPACITY_BYTES: u16 = 18;
    /// A gate the backend cannot represent was applied.
    pub const GATE: u16 = 19;
    /// A configured resource limit (live nodes, …) was exceeded.
    pub const RESOURCE: u16 = 20;
    /// The circuit failed validation before execution started.
    pub const CIRCUIT: u16 = 21;
    /// A circuit over a different qubit count was fed to the session.
    pub const QUBIT_MISMATCH: u16 = 22;
    /// A snapshot from one backend was restored into another.
    pub const SNAPSHOT_MISMATCH: u16 = 23;
    /// A snapshot from a different session was used here.
    pub const FOREIGN_SNAPSHOT: u16 = 24;

    /// The stable name of an execution-layer wire code, `None` for codes
    /// this version does not know (including the sub-16 protocol range).
    pub fn name(code: u16) -> Option<&'static str> {
        Some(match code {
            UNSUPPORTED => "unsupported",
            CAPACITY_QUBITS => "capacity-qubits",
            CAPACITY_BYTES => "capacity-bytes",
            GATE => "gate",
            RESOURCE => "resource",
            CIRCUIT => "circuit",
            QUBIT_MISMATCH => "qubit-mismatch",
            SNAPSHOT_MISMATCH => "snapshot-mismatch",
            FOREIGN_SNAPSHOT => "foreign-snapshot",
            _ => return None,
        })
    }
}

impl ExecError {
    /// The stable numeric wire code of this error (see [`wire`]).
    ///
    /// The match is deliberately exhaustive with no `_` arm: adding an
    /// [`ExecError`] (or [`CapacityResource`]) variant fails to compile
    /// until it is assigned a wire code, so the wire protocol can never
    /// silently lag the taxonomy.
    pub fn wire_code(&self) -> u16 {
        match self {
            ExecError::Unsupported { .. } => wire::UNSUPPORTED,
            ExecError::CapacityExceeded { resource, .. } => match resource {
                CapacityResource::Qubits { .. } => wire::CAPACITY_QUBITS,
                CapacityResource::Bytes { .. } => wire::CAPACITY_BYTES,
            },
            ExecError::Gate { .. } => wire::GATE,
            ExecError::Resource { .. } => wire::RESOURCE,
            ExecError::Circuit(_) => wire::CIRCUIT,
            ExecError::QubitMismatch { .. } => wire::QUBIT_MISMATCH,
            ExecError::SnapshotMismatch { .. } => wire::SNAPSHOT_MISMATCH,
            ExecError::ForeignSnapshot { .. } => wire::FOREIGN_SNAPSHOT,
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Unsupported { backend, what } => {
                write!(f, "{backend} does not support {what}")
            }
            ExecError::CapacityExceeded { backend, resource } => match resource {
                CapacityResource::Qubits { requested, limit } => write!(
                    f,
                    "{backend} is limited to {limit} qubits ({requested} requested)"
                ),
                CapacityResource::Bytes { used, limit } => write!(
                    f,
                    "{backend} exceeded its memory budget: {used} bytes in use, limit {limit}"
                ),
            },
            ExecError::Gate { backend, gate } => {
                write!(f, "{backend} does not support gate {gate}")
            }
            ExecError::Resource { backend, detail } => {
                write!(f, "{backend} exceeded a resource limit: {detail}")
            }
            ExecError::Circuit(e) => write!(f, "invalid circuit: {e}"),
            ExecError::QubitMismatch { session, circuit } => write!(
                f,
                "session holds {session} qubits but the circuit needs {circuit}"
            ),
            ExecError::SnapshotMismatch { session, snapshot } => write!(
                f,
                "cannot restore a {snapshot} snapshot into a {session} session"
            ),
            ExecError::ForeignSnapshot { backend } => write!(
                f,
                "snapshot belongs to a different {backend} session and cannot be used here"
            ),
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimulationError> for ExecError {
    fn from(value: SimulationError) -> Self {
        match value {
            SimulationError::UnsupportedGate { backend, gate } => ExecError::Gate { backend, gate },
            SimulationError::ResourceLimit { backend, detail } => {
                ExecError::Resource { backend, detail }
            }
            SimulationError::CapacityExceeded {
                backend,
                used_bytes,
                limit_bytes,
            } => ExecError::CapacityExceeded {
                backend,
                resource: CapacityResource::Bytes {
                    used: used_bytes,
                    limit: limit_bytes,
                },
            },
            SimulationError::InvalidCircuit(e) => ExecError::Circuit(e),
        }
    }
}

impl From<CircuitError> for ExecError {
    fn from(value: CircuitError) -> Self {
        ExecError::Circuit(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_backend_and_problem() {
        let e = ExecError::Unsupported {
            backend: "stabilizer",
            what: "non-Clifford circuits".into(),
        };
        assert!(e.to_string().contains("stabilizer"));
        let e = ExecError::CapacityExceeded {
            backend: "dense",
            resource: CapacityResource::Qubits {
                requested: 40,
                limit: 30,
            },
        };
        assert!(e.to_string().contains("40"));
        assert!(e.to_string().contains("30"));
        let e = ExecError::CapacityExceeded {
            backend: "bitslice",
            resource: CapacityResource::Bytes {
                used: 2048,
                limit: 1024,
            },
        };
        assert!(e.to_string().contains("2048"));
        assert!(e.to_string().contains("memory budget"));
    }

    #[test]
    fn wire_codes_round_trip_over_every_variant() {
        // One instance per variant (and per CapacityResource shape).  When a
        // new ExecError variant is added, `wire_code`'s exhaustive match
        // already forces a code decision at compile time; keep this list in
        // step so the code's name and uniqueness are tested too.
        let every: Vec<ExecError> = vec![
            ExecError::Unsupported {
                backend: "stabilizer",
                what: "non-Clifford circuits".into(),
            },
            ExecError::CapacityExceeded {
                backend: "dense",
                resource: CapacityResource::Qubits {
                    requested: 40,
                    limit: 30,
                },
            },
            ExecError::CapacityExceeded {
                backend: "bitslice",
                resource: CapacityResource::Bytes {
                    used: 2048,
                    limit: 1024,
                },
            },
            ExecError::Gate {
                backend: "stabilizer",
                gate: "t q[0]".into(),
            },
            ExecError::Resource {
                backend: "bitslice",
                detail: "nodes".into(),
            },
            ExecError::Circuit(CircuitError::NotInvertible { gate: "m".into() }),
            ExecError::QubitMismatch {
                session: 3,
                circuit: 4,
            },
            ExecError::SnapshotMismatch {
                session: "qmdd",
                snapshot: "dense",
            },
            ExecError::ForeignSnapshot { backend: "qmdd" },
        ];
        let mut seen = std::collections::BTreeSet::new();
        for error in &every {
            let code = error.wire_code();
            assert!(code >= 16, "execution codes start at 16, got {code}");
            assert!(wire::name(code).is_some(), "code {code} has no stable name");
            assert!(seen.insert(code), "code {code} assigned twice");
        }
        // The reserved protocol range and unknown codes have no name.
        assert_eq!(wire::name(0), None);
        assert_eq!(wire::name(15), None);
        assert_eq!(wire::name(u16::MAX), None);
    }

    #[test]
    fn simulation_errors_map_onto_the_taxonomy() {
        let gate: ExecError = SimulationError::UnsupportedGate {
            backend: "stabilizer",
            gate: "t q[0]".into(),
        }
        .into();
        assert!(matches!(gate, ExecError::Gate { .. }));
        let limit: ExecError = SimulationError::ResourceLimit {
            backend: "bitslice",
            detail: "nodes".into(),
        }
        .into();
        assert!(matches!(limit, ExecError::Resource { .. }));
    }
}
