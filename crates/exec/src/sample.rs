//! Batched multi-shot sampling: many measurement shots from **one**
//! simulation of the circuit.
//!
//! Every backend implements the same semantics — each shot draws one
//! uniform `u ∈ [0, 1)` from a seeded generator and maps it through the
//! inverse CDF of the outcome distribution, where the CDF is ordered by a
//! qubit-0-first conditional descent (outcome 1 before outcome 0 at every
//! qubit).  Shots sharing an outcome prefix share all the work for that
//! prefix, so the cost scales with the number of *distinct* outcome
//! prefixes rather than with `shots × circuit`:
//!
//! * **bit-sliced BDD** — non-collapsing conditional-probability descent:
//!   the state is restricted qubit by qubit with
//!   [`sliq_core::BitSliceState::condition_on`] and rolled back through the
//!   snapshot API; conditional probabilities are exact weighted SAT counts.
//! * **dense** — a single pass over the state vector builds the probability
//!   vector and its per-level subtree sums (a CDF tree); the descent then
//!   only reads precomputed sums.
//! * **QMDD** — snapshot–project–restore on edges: `select` projects the DD
//!   without renormalising, `norm_sqr` reads the joint probability, and the
//!   edge stack doubles as the snapshot set pinned across periodic GC.
//! * **stabilizer** — snapshot–measure–restore on tableau clones;
//!   conditional probabilities are 0, ½ or 1 by the CHP determinism rule.
//!
//! Because all four backends partition the *same* `u` sequence with the
//! same descent, backends that compute bit-identical conditional
//! probabilities (e.g. every exact backend on a dyadic-probability circuit)
//! produce **identical histograms** for a shared seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sliq_bdd::Manager;
use sliq_circuit::Simulator as _;
use sliq_core::{BitSliceSimulator, ConditionedView};
use sliq_dense::DenseSimulator;
use sliq_qmdd::{Edge, QmddSimulator};
use sliq_stabilizer::{StabilizerSimulator, Tableau};
use std::collections::BTreeMap;

/// A histogram of measurement outcomes over all qubits.
///
/// Outcomes are packed little-endian: bit `q` of the key is the outcome of
/// qubit `q` (so at most 64 qubits can be sampled into a histogram).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    num_qubits: usize,
    shots: u64,
    counts: BTreeMap<u64, u64>,
}

impl Histogram {
    /// An empty histogram over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Self {
            num_qubits,
            shots: 0,
            counts: BTreeMap::new(),
        }
    }

    /// Rebuilds a histogram from outcome/count pairs — the inverse of
    /// iterating [`Histogram::counts`], used to reconstruct histograms
    /// received over a serving front-end's wire protocol.  Local
    /// histograms only ever grow through sampling.
    pub fn from_counts(num_qubits: usize, counts: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let mut histogram = Self::new(num_qubits);
        for (outcome, count) in counts {
            histogram.add(outcome, count);
        }
        histogram
    }

    fn add(&mut self, outcome: u64, count: u64) {
        if count > 0 {
            *self.counts.entry(outcome).or_insert(0) += count;
            self.shots += count;
        }
    }

    /// Folds another histogram in (used to merge the per-subtree partial
    /// histograms of the parallel descent; addition is order-independent).
    fn merge(&mut self, other: Histogram) {
        for (outcome, count) in other.counts {
            self.add(outcome, count);
        }
    }

    /// Approximate resident size in bytes: the struct itself plus the
    /// B-tree's per-outcome cost (key + value + amortised node overhead).
    /// Used by the result cache's byte accounting.
    pub(crate) fn approx_bytes(&self) -> usize {
        const BYTES_PER_OUTCOME: usize = 48;
        std::mem::size_of::<Self>() + self.counts.len() * BYTES_PER_OUTCOME
    }

    /// Test-only direct insertion (the public surface only grows histograms
    /// through sampling).
    #[cfg(test)]
    pub(crate) fn add_for_test(&mut self, outcome: u64, count: u64) {
        self.add(outcome, count);
    }

    /// The number of qubits per outcome.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Total shots recorded.
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// The observed outcomes and their counts, in ascending outcome order.
    pub fn counts(&self) -> &BTreeMap<u64, u64> {
        &self.counts
    }

    /// The count of one specific outcome.
    pub fn count_of(&self, outcome: u64) -> u64 {
        self.counts.get(&outcome).copied().unwrap_or(0)
    }

    /// The observed relative frequency of one outcome.
    pub fn frequency(&self, outcome: u64) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.count_of(outcome) as f64 / self.shots as f64
        }
    }

    /// The fraction of shots in which `qubit` read 1.
    pub fn marginal_one(&self, qubit: usize) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        let ones: u64 = self
            .counts
            .iter()
            .filter(|(outcome, _)| *outcome >> qubit & 1 == 1)
            .map(|(_, count)| count)
            .sum();
        ones as f64 / self.shots as f64
    }

    /// The empirical ⟨Z⟩ expectation of one qubit (`1 − 2·Pr[q = 1]`).
    pub fn expectation_z(&self, qubit: usize) -> f64 {
        1.0 - 2.0 * self.marginal_one(qubit)
    }

    /// The most frequent outcome and its count.
    pub fn most_frequent(&self) -> Option<(u64, u64)> {
        self.counts
            .iter()
            .max_by_key(|(outcome, count)| (*count, std::cmp::Reverse(*outcome)))
            .map(|(&outcome, &count)| (outcome, count))
    }

    /// Pearson's χ² statistic against expected probabilities given by
    /// `prob_of(outcome)`, summed over every outcome with nonzero expected
    /// count (enumerates all `2^n` outcomes, so `n` is capped at 20).
    /// Outcomes observed despite zero expected probability yield infinity.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > 20`.
    pub fn chi_square(&self, mut prob_of: impl FnMut(u64) -> f64) -> f64 {
        assert!(
            self.num_qubits <= 20,
            "chi-square enumeration limited to 20 qubits"
        );
        let mut statistic = 0.0;
        for outcome in 0..(1u64 << self.num_qubits) {
            let expected = prob_of(outcome) * self.shots as f64;
            let observed = self.count_of(outcome) as f64;
            if expected > 0.0 {
                let d = observed - expected;
                statistic += d * d / expected;
            } else if observed > 0.0 {
                return f64::INFINITY;
            }
        }
        statistic
    }

    /// The outcome as per-qubit bits (`bits[q]` is the outcome of qubit `q`).
    pub fn outcome_bits(&self, outcome: u64) -> Vec<bool> {
        (0..self.num_qubits)
            .map(|q| outcome >> q & 1 == 1)
            .collect()
    }

    /// Renders the most frequent `max_rows` outcomes as `|q0 q1 …⟩ count
    /// frequency` lines (qubit 0 leftmost, matching `&[bool]` slice order).
    pub fn format_top(&self, max_rows: usize) -> String {
        let mut rows: Vec<(u64, u64)> = self.counts.iter().map(|(&o, &c)| (o, c)).collect();
        rows.sort_by_key(|&(outcome, count)| (std::cmp::Reverse(count), outcome));
        let mut out = String::new();
        for &(outcome, count) in rows.iter().take(max_rows) {
            let bits: String = (0..self.num_qubits)
                .map(|q| if outcome >> q & 1 == 1 { '1' } else { '0' })
                .collect();
            out.push_str(&format!(
                "  |{bits}⟩  {count:>8}  {:.4}\n",
                count as f64 / self.shots.max(1) as f64
            ));
        }
        if rows.len() > max_rows {
            out.push_str(&format!("  … {} more outcomes\n", rows.len() - max_rows));
        }
        out
    }
}

/// The uniform draws for `shots` shots under `seed` — one `u ∈ [0, 1)` per
/// shot, identical for every backend.
fn uniform_draws(shots: u64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..shots).map(|_| rng.gen_range(0.0..1.0)).collect()
}

/// Keeps a rescaled draw strictly below 1.0 so rounding can never push a
/// shot into a zero-probability branch further down.
const BELOW_ONE: f64 = 1.0 - f64::EPSILON;

/// A backend's view of the conditional outcome distribution: the descent
/// driver asks for `Pr[qubit = 1 | pushed prefix]` and pushes/pops outcome
/// conditions in depth-first order (always qubit 0, 1, 2, … and always the
/// 1-branch before the 0-branch).
trait ConditionalChain {
    /// `Pr[qubit = 1]` conditioned on every pushed `(qubit, value)` pair.
    fn conditional_one(&mut self, qubit: usize) -> f64;
    /// Adds the condition `qubit = value`.  Called at most once per branch,
    /// and only after `conditional_one(qubit)` at the same depth.
    fn push(&mut self, qubit: usize, value: bool);
    /// Removes the most recently pushed condition.
    fn pop(&mut self, qubit: usize);
}

/// Shared inverse-CDF descent: partitions the draws by the conditional
/// probability at each qubit, rescaling them into the chosen branch, so
/// shots with a common outcome prefix traverse that prefix once.
fn descend<C: ConditionalChain>(
    chain: &mut C,
    num_qubits: usize,
    depth: usize,
    prefix: u64,
    us: Vec<f64>,
    histogram: &mut Histogram,
) {
    if us.is_empty() {
        return;
    }
    if depth == num_qubits {
        histogram.add(prefix, us.len() as u64);
        return;
    }
    let raw = chain.conditional_one(depth);
    let p1 = if raw.is_finite() {
        raw.clamp(0.0, 1.0)
    } else {
        0.0
    };
    let p0 = 1.0 - p1;
    let mut ones = Vec::new();
    let mut zeros = Vec::new();
    for u in us {
        if u < p1 {
            ones.push((u / p1).min(BELOW_ONE));
        } else {
            let rescaled = if p0 > 0.0 { (u - p1) / p0 } else { 0.0 };
            zeros.push(rescaled.min(BELOW_ONE));
        }
    }
    if !ones.is_empty() {
        chain.push(depth, true);
        descend(
            chain,
            num_qubits,
            depth + 1,
            prefix | 1 << depth,
            ones,
            histogram,
        );
        chain.pop(depth);
    }
    if !zeros.is_empty() {
        chain.push(depth, false);
        descend(chain, num_qubits, depth + 1, prefix, zeros, histogram);
        chain.pop(depth);
    }
}

fn run_descent<C: ConditionalChain>(
    chain: &mut C,
    num_qubits: usize,
    shots: u64,
    seed: u64,
) -> Histogram {
    let mut histogram = Histogram::new(num_qubits);
    let us = uniform_draws(shots, seed);
    descend(chain, num_qubits, 0, 0, us, &mut histogram);
    histogram
}

// ---------------------------------------------------------------------- //
// Bit-sliced BDD backend
// ---------------------------------------------------------------------- //

/// One node of the bit-sliced descent: an unregistered conditioned view of
/// the state plus the draws that landed in its branch.  Views are
/// conditioned *functionally* (`ConditionedView::condition` returns a new
/// view through the kernel's `&Manager` apply operations), so independent
/// subtrees are data-independent and can be explored concurrently; the
/// partition arithmetic is byte-for-byte the one `descend` uses, so thread
/// count never changes a histogram.
#[derive(Clone)]
struct ViewTask {
    view: ConditionedView,
    depth: usize,
    prefix: u64,
    us: Vec<f64>,
    /// Joint probability of the conditions above this node.
    p_current: f64,
}

enum ViewStep {
    /// All qubits decided: `(outcome, shot count)`.
    Leaf(u64, u64),
    /// The 1-branch and/or 0-branch children (empty branches dropped).
    Children(Vec<ViewTask>),
}

/// One partition step of the inverse-CDF descent on views.
fn step_view(mgr: &Manager, task: ViewTask, num_qubits: usize) -> ViewStep {
    if task.us.is_empty() {
        return ViewStep::Children(Vec::new());
    }
    if task.depth == num_qubits {
        return ViewStep::Leaf(task.prefix, task.us.len() as u64);
    }
    let joint_one = task.view.joint_probability_of_one(mgr, task.depth);
    let raw = if task.p_current <= 0.0 {
        0.0
    } else {
        joint_one / task.p_current
    };
    let p1 = if raw.is_finite() {
        raw.clamp(0.0, 1.0)
    } else {
        0.0
    };
    let p0 = 1.0 - p1;
    let mut ones = Vec::new();
    let mut zeros = Vec::new();
    for u in task.us {
        if u < p1 {
            ones.push((u / p1).min(BELOW_ONE));
        } else {
            let rescaled = if p0 > 0.0 { (u - p1) / p0 } else { 0.0 };
            zeros.push(rescaled.min(BELOW_ONE));
        }
    }
    let mut children = Vec::new();
    if !ones.is_empty() {
        children.push(ViewTask {
            view: task.view.condition(mgr, task.depth, true),
            depth: task.depth + 1,
            prefix: task.prefix | 1 << task.depth,
            us: ones,
            p_current: joint_one,
        });
    }
    if !zeros.is_empty() {
        children.push(ViewTask {
            view: task.view.condition(mgr, task.depth, false),
            depth: task.depth + 1,
            prefix: task.prefix,
            us: zeros,
            p_current: (task.p_current - joint_one).max(0.0),
        });
    }
    ViewStep::Children(children)
}

/// Serial depth-first descent of one subtree.
fn descend_view(mgr: &Manager, task: ViewTask, num_qubits: usize, histogram: &mut Histogram) {
    match step_view(mgr, task, num_qubits) {
        ViewStep::Leaf(prefix, count) => histogram.add(prefix, count),
        ViewStep::Children(children) => {
            for child in children {
                descend_view(mgr, child, num_qubits, histogram);
            }
        }
    }
}

/// Descends every task subtree into `histogram`, serially at 1 thread and
/// over the worker pool otherwise.  Partial histograms merge by addition
/// and the partition arithmetic is scheduling-independent, so thread count
/// never changes the result.
fn descend_tasks(
    mgr: &Manager,
    tasks: Vec<ViewTask>,
    num_qubits: usize,
    threads: usize,
    histogram: &mut Histogram,
) {
    if threads <= 1 {
        for task in tasks {
            descend_view(mgr, task, num_qubits, histogram);
        }
        return;
    }
    // Peel the outcome trie breadth-first until there are enough
    // independent subtrees to keep the pool busy, then fan the subtree
    // descents out.
    let target = threads * 4;
    let mut frontier = std::collections::VecDeque::from(tasks);
    let mut ready: Vec<ViewTask> = Vec::new();
    while let Some(task) = frontier.pop_front() {
        if task.depth < num_qubits && frontier.len() + ready.len() + 1 >= target {
            ready.push(task);
            continue;
        }
        match step_view(mgr, task, num_qubits) {
            ViewStep::Leaf(prefix, count) => histogram.add(prefix, count),
            ViewStep::Children(children) => frontier.extend(children),
        }
    }
    let pool = sliq_bdd::pool::global(threads);
    let partials = pool.map(ready.len(), |index| {
        let mut partial = Histogram::new(num_qubits);
        descend_view(mgr, ready[index].clone(), num_qubits, &mut partial);
        partial
    });
    for partial in partials {
        histogram.merge(partial);
    }
}

/// The uncached bit-sliced sampler.  [`Session::sample`] goes through
/// [`sample_bitslice_cached`] instead; this stays as the reference
/// implementation the differential tests compare the cache against.
///
/// [`Session::sample`]: crate::Session::sample
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn sample_bitslice(sim: &mut BitSliceSimulator, shots: u64, seed: u64) -> Histogram {
    let num_qubits = sim.num_qubits();
    let threads = sim.threads();
    let mut histogram = Histogram::new(num_qubits);
    {
        let state = sim.state();
        let mgr = state.manager();
        let view = ConditionedView::of_state(state);
        let p_total = view.total_probability(mgr);
        let root = ViewTask {
            view,
            depth: 0,
            prefix: 0,
            us: uniform_draws(shots, seed),
            p_current: p_total,
        };
        descend_tasks(mgr, vec![root], num_qubits, threads, &mut histogram);
    }
    // The descent hash-consed transient conditioned slices that no root
    // registers; reclaim them if the manager considers it worthwhile.
    sim.state_mut().maybe_collect_garbage();
    histogram
}

// ---------------------------------------------------------------------- //
// Bit-sliced sampling cache (persists across `Session::sample` calls)
// ---------------------------------------------------------------------- //

/// Upper bound on cached outcome-trie nodes: enough to memoise the hot
/// prefixes of any realistic shot batch while keeping the pinned-root
/// footprint (4·r slots per node) small.
const SAMPLE_CACHE_MAX_NODES: usize = 1024;

/// One memoised node of the outcome trie: the conditioned view, the
/// absolute probabilities the descent computed there, and the two
/// lazily-materialised children.  Storing `p_current` and `joint_one` as
/// the *absolute* joint probabilities (exactly what [`step_view`] passes
/// around) makes a cached descent's partition arithmetic byte-for-byte the
/// uncached one's, so caching can never change a histogram.
struct CacheNode {
    view: ConditionedView,
    depth: usize,
    /// Joint probability of the conditions above this node.
    p_current: f64,
    /// `Pr[conditions ∧ qubit_{depth} = 1]`, once a descent computed it.
    joint_one: Option<f64>,
    /// Trie children, indexed by the branch value (`[0-branch, 1-branch]`).
    children: [Option<usize>; 2],
}

/// A memoised outcome trie for repeated [`sample_bitslice_cached`] calls on
/// an **unchanged** state: conditioned views and their SAT-count
/// probabilities — the entirety of a descent's BDD work — are computed once
/// and replayed for every later seed.  The owner must drop the cache (via
/// [`SampleCache::release`], to unpin its views) whenever the state
/// mutates.
pub(crate) struct SampleCache {
    /// Trie nodes; index 0 is the unconditioned root.
    nodes: Vec<CacheNode>,
    /// Root-registry pins keeping every cached view alive across the GC at
    /// the end of each sampling call.
    pins: Vec<sliq_bdd::RootSlot>,
    /// Nodes `0..pinned` have their views pinned already.
    pinned: usize,
}

impl SampleCache {
    /// A cache rooted at the state's current (unconditioned) view.
    fn new(state: &sliq_core::BitSliceState) -> Self {
        let view = ConditionedView::of_state(state);
        let p_total = view.total_probability(state.manager());
        Self {
            nodes: vec![CacheNode {
                view,
                depth: 0,
                p_current: p_total,
                joint_one: None,
                children: [None, None],
            }],
            pins: Vec::new(),
            pinned: 0,
        }
    }

    /// Pins the views of nodes added since the last call.  Must run before
    /// the post-sampling garbage collection: node materialisation happens
    /// under a `&Manager` borrow, so pinning (which needs `&mut`) is
    /// deferred to the end of the call — sound because GC itself needs
    /// `&mut` and therefore cannot run in between.
    fn pin_new(&mut self, state: &mut sliq_core::BitSliceState) {
        while self.pinned < self.nodes.len() {
            let roots: Vec<_> = self.nodes[self.pinned].view.roots().collect();
            for f in roots {
                self.pins.push(state.pin_root(f));
            }
            self.pinned += 1;
        }
    }

    /// Unpins every cached view; call when the state mutates.
    pub(crate) fn release(self, state: &mut sliq_core::BitSliceState) {
        for slot in self.pins {
            state.unpin_root(slot);
        }
    }
}

/// The cached counterpart of [`descend_view`]: walks the memoised trie,
/// filling in probabilities and children on first visit (up to the node
/// budget) and pushing the subtrees that fall off the cached region onto
/// `overflow` for the ordinary descent to finish.
#[allow(clippy::too_many_arguments)]
fn descend_cached(
    mgr: &Manager,
    cache: &mut SampleCache,
    node: usize,
    prefix: u64,
    us: Vec<f64>,
    num_qubits: usize,
    histogram: &mut Histogram,
    overflow: &mut Vec<ViewTask>,
) {
    if us.is_empty() {
        return;
    }
    let depth = cache.nodes[node].depth;
    if depth == num_qubits {
        histogram.add(prefix, us.len() as u64);
        return;
    }
    let p_current = cache.nodes[node].p_current;
    let joint_one = match cache.nodes[node].joint_one {
        Some(cached) => cached,
        None => {
            let computed = cache.nodes[node].view.joint_probability_of_one(mgr, depth);
            cache.nodes[node].joint_one = Some(computed);
            computed
        }
    };
    let raw = if p_current <= 0.0 {
        0.0
    } else {
        joint_one / p_current
    };
    let p1 = if raw.is_finite() {
        raw.clamp(0.0, 1.0)
    } else {
        0.0
    };
    let p0 = 1.0 - p1;
    let mut ones = Vec::new();
    let mut zeros = Vec::new();
    for u in us {
        if u < p1 {
            ones.push((u / p1).min(BELOW_ONE));
        } else {
            let rescaled = if p0 > 0.0 { (u - p1) / p0 } else { 0.0 };
            zeros.push(rescaled.min(BELOW_ONE));
        }
    }
    for (value, branch_us) in [(true, ones), (false, zeros)] {
        if branch_us.is_empty() {
            continue;
        }
        let child_prefix = if value { prefix | 1 << depth } else { prefix };
        // Leaves are counted inline, never cached: their views carry no
        // information the histogram needs.
        if depth + 1 == num_qubits {
            histogram.add(child_prefix, branch_us.len() as u64);
            continue;
        }
        let child_p = if value {
            joint_one
        } else {
            (p_current - joint_one).max(0.0)
        };
        let child_slot = cache.nodes[node].children[value as usize];
        let child = match child_slot {
            Some(existing) => Some(existing),
            None if cache.nodes.len() < SAMPLE_CACHE_MAX_NODES => {
                let view = cache.nodes[node].view.condition(mgr, depth, value);
                let fresh = cache.nodes.len();
                cache.nodes.push(CacheNode {
                    view,
                    depth: depth + 1,
                    p_current: child_p,
                    joint_one: None,
                    children: [None, None],
                });
                cache.nodes[node].children[value as usize] = Some(fresh);
                Some(fresh)
            }
            None => None,
        };
        match child {
            Some(child) => descend_cached(
                mgr,
                cache,
                child,
                child_prefix,
                branch_us,
                num_qubits,
                histogram,
                overflow,
            ),
            None => overflow.push(ViewTask {
                view: cache.nodes[node].view.condition(mgr, depth, value),
                depth: depth + 1,
                prefix: child_prefix,
                us: branch_us,
                p_current: child_p,
            }),
        }
    }
}

/// [`sample_bitslice`] with a persistent outcome-trie cache: the first call
/// on a state pays the full SAT-count descent; later calls on the same
/// (unchanged) state replay the memoised probabilities and views and only
/// do BDD work where a new seed's draws reach prefixes no earlier call
/// visited.  The caller owns the cache slot and must invalidate it (see
/// [`SampleCache::release`]) on any state mutation.
pub(crate) fn sample_bitslice_cached(
    sim: &mut BitSliceSimulator,
    cache_slot: &mut Option<SampleCache>,
    shots: u64,
    seed: u64,
) -> Histogram {
    let num_qubits = sim.num_qubits();
    let threads = sim.threads();
    let mut histogram = Histogram::new(num_qubits);
    {
        let state = sim.state();
        let mgr = state.manager();
        let cache = cache_slot.get_or_insert_with(|| SampleCache::new(state));
        let mut overflow = Vec::new();
        descend_cached(
            mgr,
            cache,
            0,
            0,
            uniform_draws(shots, seed),
            num_qubits,
            &mut histogram,
            &mut overflow,
        );
        descend_tasks(mgr, overflow, num_qubits, threads, &mut histogram);
    }
    let state = sim.state_mut();
    if let Some(cache) = cache_slot.as_mut() {
        cache.pin_new(state);
    }
    state.maybe_collect_garbage();
    histogram
}

// ---------------------------------------------------------------------- //
// Dense backend (CDF tree)
// ---------------------------------------------------------------------- //

struct DenseChain {
    /// `sums[d][p]` = Pr[qubits 0..d read the bits of `p`]; `sums[n]` is the
    /// probability vector itself, built in one pass over the state.
    sums: Vec<Vec<f64>>,
    prefix: usize,
}

impl ConditionalChain for DenseChain {
    fn conditional_one(&mut self, qubit: usize) -> f64 {
        let parent = self.sums[qubit][self.prefix];
        if parent <= 0.0 {
            0.0
        } else {
            self.sums[qubit + 1][self.prefix | 1 << qubit] / parent
        }
    }

    fn push(&mut self, qubit: usize, value: bool) {
        if value {
            self.prefix |= 1 << qubit;
        }
    }

    fn pop(&mut self, qubit: usize) {
        self.prefix &= !(1 << qubit);
    }
}

pub(crate) fn sample_dense(sim: &DenseSimulator, shots: u64, seed: u64) -> Histogram {
    let num_qubits = sim.num_qubits();
    let mut sums: Vec<Vec<f64>> = Vec::with_capacity(num_qubits + 1);
    sums.push(sim.probabilities());
    for _ in 0..num_qubits {
        let last = sums.last().expect("seeded with the probability vector");
        let half = last.len() / 2;
        let folded: Vec<f64> = (0..half).map(|p| last[p] + last[p + half]).collect();
        sums.push(folded);
    }
    sums.reverse();
    let mut chain = DenseChain { sums, prefix: 0 };
    run_descent(&mut chain, num_qubits, shots, seed)
}

// ---------------------------------------------------------------------- //
// QMDD backend (snapshot–project–restore on edges)
// ---------------------------------------------------------------------- //

struct QmddChain<'a> {
    sim: &'a mut QmddSimulator,
    stack: Vec<(Edge, f64)>,
    current: Edge,
    p_current: f64,
    p_one_abs: Vec<f64>,
    gc_limit: usize,
}

impl ConditionalChain for QmddChain<'_> {
    fn conditional_one(&mut self, qubit: usize) -> f64 {
        let projected = self.sim.project(self.current, qubit, true);
        let joint = self.sim.edge_norm_sqr(projected);
        self.p_one_abs[qubit] = joint;
        if self.p_current <= 0.0 {
            0.0
        } else {
            joint / self.p_current
        }
    }

    fn push(&mut self, qubit: usize, value: bool) {
        self.stack.push((self.current, self.p_current));
        self.current = self.sim.project(self.current, qubit, value);
        let joint_one = self.p_one_abs[qubit];
        self.p_current = if value {
            joint_one
        } else {
            (self.p_current - joint_one).max(0.0)
        };
        if self.sim.allocated_nodes() > self.gc_limit {
            let mut keep: Vec<Edge> = self.stack.iter().map(|&(e, _)| e).collect();
            keep.push(self.current);
            self.sim.collect_garbage_keeping(&keep);
            self.gc_limit = (self.sim.allocated_nodes() * 2).max(1 << 16);
        }
    }

    fn pop(&mut self, _qubit: usize) {
        let (edge, p) = self.stack.pop().expect("pop matches a push");
        self.current = edge;
        self.p_current = p;
    }
}

pub(crate) fn sample_qmdd(sim: &mut QmddSimulator, shots: u64, seed: u64) -> Histogram {
    let num_qubits = sim.num_qubits();
    let root = sim.root_edge();
    let p_total = sim.edge_norm_sqr(root);
    let gc_limit = (sim.allocated_nodes() * 2).max(1 << 16);
    let mut chain = QmddChain {
        sim,
        stack: Vec::new(),
        current: root,
        p_current: p_total,
        p_one_abs: vec![0.0; num_qubits],
        gc_limit,
    };
    run_descent(&mut chain, num_qubits, shots, seed)
}

// ---------------------------------------------------------------------- //
// Stabilizer backend (snapshot–measure–restore on tableau clones)
// ---------------------------------------------------------------------- //

struct StabilizerChain {
    current: Tableau,
    stack: Vec<Tableau>,
}

impl ConditionalChain for StabilizerChain {
    fn conditional_one(&mut self, qubit: usize) -> f64 {
        match self.current.deterministic_outcome(qubit) {
            Some(true) => 1.0,
            Some(false) => 0.0,
            None => 0.5,
        }
    }

    fn push(&mut self, qubit: usize, value: bool) {
        self.stack.push(self.current.clone());
        self.current.measure(qubit, value);
    }

    fn pop(&mut self, _qubit: usize) {
        self.current = self.stack.pop().expect("pop matches a push");
    }
}

pub(crate) fn sample_stabilizer(sim: &StabilizerSimulator, shots: u64, seed: u64) -> Histogram {
    let num_qubits = sim.tableau().num_qubits();
    let mut chain = StabilizerChain {
        current: sim.tableau().clone(),
        stack: Vec::new(),
    };
    run_descent(&mut chain, num_qubits, shots, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sliq_circuit::{Circuit, Simulator};

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    #[test]
    fn all_backends_agree_exactly_on_the_bell_state() {
        let circuit = bell();
        let shots = 500;
        let seed = 11;
        let mut bitslice = BitSliceSimulator::new(2);
        bitslice.run(&circuit).unwrap();
        let h_bitslice = sample_bitslice(&mut bitslice, shots, seed);
        let mut dense = DenseSimulator::new(2);
        dense.run(&circuit).unwrap();
        let h_dense = sample_dense(&dense, shots, seed);
        let mut qmdd = QmddSimulator::new(2);
        qmdd.run(&circuit).unwrap();
        let h_qmdd = sample_qmdd(&mut qmdd, shots, seed);
        let mut stab = StabilizerSimulator::new(2);
        stab.run(&circuit).unwrap();
        let h_stab = sample_stabilizer(&stab, shots, seed);
        assert_eq!(h_bitslice, h_dense);
        assert_eq!(h_bitslice, h_qmdd);
        assert_eq!(h_bitslice, h_stab);
        // Only |00⟩ and |11⟩ appear, in roughly equal proportion.
        assert_eq!(h_bitslice.count_of(0b00) + h_bitslice.count_of(0b11), shots);
        assert!(h_bitslice.count_of(0b00) > shots / 4);
        assert!(h_bitslice.count_of(0b11) > shots / 4);
    }

    #[test]
    fn sampling_leaves_the_state_untouched() {
        let circuit = bell();
        let mut bitslice = BitSliceSimulator::new(2);
        bitslice.run(&circuit).unwrap();
        let _ = sample_bitslice(&mut bitslice, 200, 1);
        assert!((bitslice.probability_of_one(0) - 0.5).abs() < 1e-12);
        assert!(bitslice.is_exactly_normalized());
        let mut qmdd = QmddSimulator::new(2);
        qmdd.run(&circuit).unwrap();
        let _ = sample_qmdd(&mut qmdd, 200, 1);
        assert!((qmdd.probability_of_one(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn deterministic_states_sample_deterministically() {
        let mut circuit = Circuit::new(3);
        circuit.x(0).x(2);
        let mut sim = BitSliceSimulator::new(3);
        sim.run(&circuit).unwrap();
        let hist = sample_bitslice(&mut sim, 64, 5);
        assert_eq!(hist.count_of(0b101), 64);
        assert_eq!(hist.counts().len(), 1);
        assert_eq!(hist.marginal_one(0), 1.0);
        assert_eq!(hist.marginal_one(1), 0.0);
        assert_eq!(hist.expectation_z(2), -1.0);
    }

    #[test]
    fn histogram_statistics_and_rendering() {
        let mut hist = Histogram::new(2);
        hist.add(0b00, 30);
        hist.add(0b11, 70);
        assert_eq!(hist.shots(), 100);
        assert_eq!(hist.most_frequent(), Some((0b11, 70)));
        assert!((hist.frequency(0b00) - 0.3).abs() < 1e-12);
        // Expected (50, 50), observed (30, 70): χ² = 20²/50 + 20²/50 = 16.
        let chi = hist.chi_square(|o| if o == 0 || o == 3 { 0.5 } else { 0.0 });
        assert!((chi - 16.0).abs() < 1e-9);
        let text = hist.format_top(1);
        assert!(text.contains("|11⟩"));
        assert!(text.contains("1 more"));
        // Impossible outcomes observed ⇒ infinite statistic.
        let chi = hist.chi_square(|o| if o == 0 { 1.0 } else { 0.0 });
        assert!(chi.is_infinite());
    }

    #[test]
    fn cached_sampling_matches_the_uncached_reference() {
        let mut circuit = Circuit::new(4);
        circuit.h(0).cx(0, 1).h(2).t(2).cx(2, 3).h(3);
        let shots = 2000;
        let mut cache = None;
        let mut cached_sim = BitSliceSimulator::new(4);
        cached_sim.run(&circuit).unwrap();
        let mut reference_sim = BitSliceSimulator::new(4);
        reference_sim.run(&circuit).unwrap();
        // Cold cache, warm cache, and a fresh seed that reaches prefixes
        // the first seed never visited — all bit-identical to the uncached
        // sampler.
        for seed in [7, 7, 8, 1234] {
            let cached = sample_bitslice_cached(&mut cached_sim, &mut cache, shots, seed);
            let reference = sample_bitslice(&mut reference_sim, shots, seed);
            assert_eq!(cached, reference, "seed {seed}");
        }
        assert!(cache.is_some(), "the cache must persist across calls");
    }

    #[test]
    fn cache_release_unpins_every_view() {
        let mut circuit = Circuit::new(3);
        circuit.h(0).cx(0, 1).t(1).h(2);
        let mut sim = BitSliceSimulator::new(3);
        sim.run(&circuit).unwrap();
        let mut cache = None;
        let _ = sample_bitslice_cached(&mut sim, &mut cache, 500, 3);
        let cache = cache.expect("sampling builds the cache");
        assert!(!cache.pins.is_empty(), "cached views must be pinned");
        cache.release(sim.state_mut());
        // With the pins gone, a forced GC reclaims the cached conditioned
        // slices but must keep the live state intact.
        sim.state_mut().collect_garbage();
        assert!((sim.probability_of_one(0) - 0.5).abs() < 1e-12);
        assert!(sim.is_exactly_normalized());
    }

    #[test]
    fn shared_seed_draws_are_deterministic() {
        assert_eq!(uniform_draws(16, 9), uniform_draws(16, 9));
        assert_ne!(uniform_draws(16, 9), uniform_draws(16, 10));
        assert!(uniform_draws(1000, 3)
            .iter()
            .all(|u| (0.0..1.0).contains(u)));
    }
}
