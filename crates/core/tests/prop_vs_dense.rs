//! The central correctness property of the reproduction: on random circuits
//! over the full supported gate set, the bit-sliced BDD simulator must agree
//! amplitude-by-amplitude with the dense state-vector oracle — and, unlike
//! the floating-point backends, it must stay *exactly* normalised.

use proptest::prelude::*;
use sliq_circuit::{Circuit, Gate, Simulator};
use sliq_core::BitSliceSimulator;
use sliq_dense::DenseSimulator;

const NQ: usize = 4;

fn any_gate() -> impl Strategy<Value = Gate> {
    let distinct2 = (0..NQ, 0..NQ).prop_filter("distinct", |(a, b)| a != b);
    let distinct3 =
        (0..NQ, 0..NQ, 0..NQ).prop_filter("distinct", |(a, b, c)| a != b && b != c && a != c);
    prop_oneof![
        (0..NQ).prop_map(Gate::X),
        (0..NQ).prop_map(Gate::Y),
        (0..NQ).prop_map(Gate::Z),
        (0..NQ).prop_map(Gate::H),
        (0..NQ).prop_map(Gate::S),
        (0..NQ).prop_map(Gate::Sdg),
        (0..NQ).prop_map(Gate::T),
        (0..NQ).prop_map(Gate::Tdg),
        (0..NQ).prop_map(Gate::RxPi2),
        (0..NQ).prop_map(Gate::RyPi2),
        distinct2
            .clone()
            .prop_map(|(control, target)| Gate::Cnot { control, target }),
        distinct2.prop_map(|(control, target)| Gate::Cz { control, target }),
        distinct3
            .clone()
            .prop_map(|(c0, c1, target)| Gate::Toffoli {
                controls: vec![c0, c1],
                target
            }),
        distinct3.prop_map(|(c, target1, target2)| Gate::Fredkin {
            controls: vec![c],
            target1,
            target2
        }),
    ]
}

fn all_basis_states() -> impl Iterator<Item = Vec<bool>> {
    (0..(1usize << NQ)).map(|i| (0..NQ).map(|q| i >> q & 1 == 1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn amplitudes_match_dense_oracle(gates in proptest::collection::vec(any_gate(), 0..35)) {
        let mut circuit = Circuit::new(NQ);
        circuit.extend(gates);
        let mut dense = DenseSimulator::new(NQ);
        let mut bitslice = BitSliceSimulator::new(NQ);
        dense.run(&circuit).unwrap();
        bitslice.run(&circuit).unwrap();
        for bits in all_basis_states() {
            let expected = dense.amplitude(&bits);
            let got = bitslice.amplitude(&bits).to_complex();
            prop_assert!(
                expected.approx_eq(&got, 1e-9),
                "basis {:?}: dense {} vs bit-sliced {}", bits, expected, got
            );
            // The width-independent floating point accessor agrees too.
            let got_f64 = bitslice.amplitude_complex(&bits);
            prop_assert!(expected.approx_eq(&got_f64, 1e-9));
        }
    }

    #[test]
    fn always_exactly_normalized(gates in proptest::collection::vec(any_gate(), 0..35)) {
        let mut circuit = Circuit::new(NQ);
        circuit.extend(gates);
        let mut bitslice = BitSliceSimulator::new(NQ);
        bitslice.run(&circuit).unwrap();
        // Exact integer identity — no epsilon anywhere.
        prop_assert!(bitslice.is_exactly_normalized());
        prop_assert!((bitslice.total_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn marginal_probabilities_match_dense(gates in proptest::collection::vec(any_gate(), 0..30), q in 0..NQ) {
        let mut circuit = Circuit::new(NQ);
        circuit.extend(gates);
        let mut dense = DenseSimulator::new(NQ);
        let mut bitslice = BitSliceSimulator::new(NQ);
        dense.run(&circuit).unwrap();
        bitslice.run(&circuit).unwrap();
        let pd = dense.probability_of_one(q);
        let pb = bitslice.probability_of_one(q);
        prop_assert!((pd - pb).abs() < 1e-9, "qubit {}: dense {} bitslice {}", q, pd, pb);
    }

    #[test]
    fn measurement_collapse_matches_dense(gates in proptest::collection::vec(any_gate(), 0..25), q in 0..NQ, u in 0.0f64..1.0) {
        let mut circuit = Circuit::new(NQ);
        circuit.extend(gates);
        let mut dense = DenseSimulator::new(NQ);
        let mut bitslice = BitSliceSimulator::new(NQ);
        dense.run(&circuit).unwrap();
        bitslice.run(&circuit).unwrap();
        let p = dense.probability_of_one(q);
        // Skip draws that land on the decision boundary within float noise.
        if (u - p).abs() > 1e-6 {
            let od = dense.measure_with(q, u);
            let ob = bitslice.measure_with(q, u);
            prop_assert_eq!(od, ob);
            for k in 0..NQ {
                let pd = dense.probability_of_one(k);
                let pb = bitslice.probability_of_one(k);
                prop_assert!((pd - pb).abs() < 1e-9, "post-collapse qubit {}: {} vs {}", k, pd, pb);
            }
            prop_assert!((bitslice.total_probability() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn clifford_t_circuit_then_inverse_restores_identity(gates in proptest::collection::vec(any_gate(), 0..20)) {
        // Filter to invertible gates (everything except Rx/Ry π/2 rotations).
        let gates: Vec<Gate> = gates
            .into_iter()
            .filter(|g| !matches!(g, Gate::RxPi2(_) | Gate::RyPi2(_)))
            .collect();
        let mut circuit = Circuit::new(NQ);
        circuit.extend(gates);
        let inverse = circuit.inverse().expect("filtered to invertible gates");
        let mut bitslice = BitSliceSimulator::new(NQ);
        bitslice.run(&circuit).unwrap();
        bitslice.run(&inverse).unwrap();
        // The state must be |0…0⟩ again (up to the exact global 1/√2ᵏ bookkeeping).
        prop_assert!((bitslice.probability_of_basis_state(&[false; NQ]) - 1.0).abs() < 1e-9);
        prop_assert!(bitslice.is_exactly_normalized());
    }

    #[test]
    fn amplitudes_match_dense_oracle_under_constant_reordering(gates in proptest::collection::vec(any_gate(), 0..35)) {
        // End-to-end reordering equivalence: with the auto-reorder trigger
        // forced to fire after every gate (threshold 1, converging sifting),
        // the slice roots must survive every sift and the final state must
        // still agree amplitude-by-amplitude with the dense oracle.
        let mut circuit = Circuit::new(NQ);
        circuit.extend(gates);
        let mut dense = DenseSimulator::new(NQ);
        let mut bitslice = BitSliceSimulator::new(NQ).with_auto_reorder(true);
        bitslice.state_mut().set_reorder_threshold(1);
        bitslice.state_mut().set_converging_sifting(true);
        dense.run(&circuit).unwrap();
        bitslice.run(&circuit).unwrap();
        for bits in all_basis_states() {
            let expected = dense.amplitude(&bits);
            let got = bitslice.amplitude_complex(&bits);
            prop_assert!(
                expected.approx_eq(&got, 1e-9),
                "basis {:?}: dense {} vs reordered bit-sliced {}", bits, expected, got
            );
        }
        for q in 0..NQ {
            let pd = dense.probability_of_one(q);
            let pb = bitslice.probability_of_one(q);
            prop_assert!((pd - pb).abs() < 1e-9, "qubit {}: dense {} reordered {}", q, pd, pb);
        }
        prop_assert!(bitslice.is_exactly_normalized());
    }

    #[test]
    fn random_circuit_state_respects_complement_canonicity(gates in proptest::collection::vec(any_gate(), 0..35)) {
        // The kernel's complement-edge canonical form must survive whole
        // circuits: walking every live slice BDD of the final state, no
        // stored low edge may carry the complement bit, and the sharing
        // report must be consistent with the reachable-node walk.
        let mut circuit = Circuit::new(NQ);
        circuit.extend(gates);
        let mut bitslice = BitSliceSimulator::new(NQ);
        bitslice.run(&circuit).unwrap();
        let state = bitslice.state();
        let mgr = state.manager();
        let mut stack: Vec<_> = state.all_roots().iter().map(|f| f.regular()).collect();
        let mut seen = std::collections::HashSet::new();
        while let Some(f) = stack.pop() {
            if f.is_terminal() || !seen.insert(f) {
                continue;
            }
            let (_, low, high) = mgr.node(f).expect("non-terminal");
            prop_assert!(!low.is_complemented(), "stored low edge is complemented");
            stack.push(low);
            stack.push(high.regular());
        }
        let (complemented, nodes) = state.complement_edge_count();
        prop_assert_eq!(nodes, seen.len());
        prop_assert!(complemented <= nodes);
    }
}
