//! # sliq-core
//!
//! The bit-sliced BDD quantum circuit simulator — a from-scratch Rust
//! implementation of the method of *"Bit-Slicing the Hilbert Space: Scaling
//! Up Accurate Quantum Circuit Simulation to a New Level"* (DAC 2021).
//!
//! Key ideas reproduced here:
//!
//! 1. **Algebraic amplitudes** (`sliq-math`): every amplitude is
//!    `(a·ω³ + b·ω² + c·ω + d)/√2ᵏ` with integers, so Clifford+T /
//!    Toffoli+Hadamard circuits simulate without any precision loss.
//! 2. **Bit-slicing** ([`BitSliceState`]): the four coefficient vectors of
//!    length `2ⁿ` are stored bit-by-bit as `4·r` BDDs over the `n` qubit
//!    variables, with the width `r` growing on demand.
//! 3. **Gate formulas instead of matrices** ([`BitSliceSimulator`]): each
//!    gate of the paper's Table I updates the slices with pre-characterised
//!    Boolean formulas (symbolic ripple-carry adders), replacing
//!    matrix–vector multiplication by BDD manipulation.
//! 4. **Exact measurement** : outcome probabilities are exact weighted SAT
//!    counts accumulated in `x + y·√2` big-integer form; only the final
//!    conversion to `f64` rounds (mirroring the paper's use of MPFR).
//!
//! ```
//! use sliq_circuit::{Circuit, Simulator};
//! use sliq_core::BitSliceSimulator;
//!
//! // A 3-qubit GHZ state: H then a CNOT chain.
//! let mut circuit = Circuit::new(3);
//! circuit.h(0).cx(0, 1).cx(1, 2);
//! let mut sim = BitSliceSimulator::new(3);
//! sim.run(&circuit)?;
//! assert!((sim.probability_of_basis_state(&[true, true, true]) - 0.5).abs() < 1e-12);
//! assert!(sim.is_exactly_normalized());
//! # Ok::<(), sliq_circuit::SimulationError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arith;
mod gates;
mod measure;
mod monolithic;
mod simulator;
mod state;

pub use measure::ConditionedView;
pub use monolithic::MonolithicInfo;
pub use simulator::{BitSliceLimits, BitSliceSimulator};
pub use state::{BitSliceState, Family, StateSnapshot};
