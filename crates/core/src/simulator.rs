//! The [`Simulator`] facade over the bit-sliced BDD state.

use crate::gates;
use crate::state::BitSliceState;
use sliq_circuit::{Gate, SimulationError, Simulator};
use sliq_math::Algebraic;

/// Resource limits for the bit-sliced backend (used by the benchmark harness
/// to emulate the paper's per-case memory-out condition).
#[derive(Debug, Clone, Copy, Default)]
pub struct BitSliceLimits {
    /// Maximum number of live BDD nodes; `None` means unlimited.
    pub max_nodes: Option<usize>,
    /// Maximum bytes across the kernel's arena, unique subtables and op
    /// caches; `None` means unlimited.  Exceeding it surfaces as
    /// [`SimulationError::CapacityExceeded`] at the next gate boundary (and
    /// bounds the kernel's own sifting passes), leaving the state queryable
    /// and pre-limit snapshots restorable.
    pub max_bytes: Option<usize>,
}

/// The bit-sliced BDD quantum circuit simulator — the paper's contribution.
///
/// The full state vector is represented by `4·r` BDDs over the qubit
/// variables plus one integer `k` (Section III-B); gates are applied by the
/// pre-characterised Boolean formulas of Table II, so the simulation is exact
/// for the whole supported gate set, and measurement probabilities are
/// computed from exact weighted SAT counts with only a final rounding to
/// `f64`.
///
/// ```
/// use sliq_circuit::{Circuit, Simulator};
/// use sliq_core::BitSliceSimulator;
/// let mut circuit = Circuit::new(2);
/// circuit.h(0).cx(0, 1);
/// let mut sim = BitSliceSimulator::new(2);
/// sim.run(&circuit)?;
/// assert!((sim.probability_of_one(1) - 0.5).abs() < 1e-12);
/// assert!(sim.is_exactly_normalized());
/// # Ok::<(), sliq_circuit::SimulationError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BitSliceSimulator {
    state: BitSliceState,
    limits: BitSliceLimits,
    gates_applied: usize,
}

impl BitSliceSimulator {
    /// Creates the simulator in the all-zeros state.
    pub fn new(num_qubits: usize) -> Self {
        Self {
            state: BitSliceState::new(num_qubits),
            limits: BitSliceLimits::default(),
            gates_applied: 0,
        }
    }

    /// Creates the simulator in an arbitrary basis state.
    pub fn with_initial_bits(bits: &[bool]) -> Self {
        Self {
            state: BitSliceState::with_initial_bits(bits),
            limits: BitSliceLimits::default(),
            gates_applied: 0,
        }
    }

    /// Sets resource limits (builder style).  The limits are pushed into the
    /// kernel so its own exclusive phases (sifting, cache growth) respect
    /// them too, not just the per-gate checks here.
    pub fn with_limits(mut self, limits: BitSliceLimits) -> Self {
        self.limits = limits;
        self.state
            .set_memory_limits(limits.max_nodes, limits.max_bytes);
        self
    }

    /// Enables automatic variable reordering (builder style): the qubit
    /// order is sifted whenever the live BDD outgrows the kernel's trigger
    /// threshold, shrinking the state representation on workloads where the
    /// qubit-major order is bad (e.g. 20+-qubit random Clifford+T
    /// circuits).  All amplitudes and probabilities are unaffected — only
    /// the internal BDD shape changes.
    pub fn with_auto_reorder(mut self, enabled: bool) -> Self {
        self.state.set_auto_reorder(enabled);
        self
    }

    /// Sets the per-gate slice fan-out width (builder style): the `4·r`
    /// independent slice updates of every gate run across this many threads
    /// over the kernel's concurrent manager.  1 disables the worker pool;
    /// the default comes from `SLIQ_THREADS` / the machine's available
    /// parallelism.  Results are identical at every thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.state.set_threads(threads);
        self
    }

    /// The configured fan-out width.
    pub fn threads(&self) -> usize {
        self.state.threads()
    }

    /// Overrides the kernel flavour (builder style): forcing
    /// [`sliq_bdd::KernelMode::Shared`] at 1 thread is how the benchmarks
    /// measure the serial fast paths' gain; the unsound direction (serial
    /// above 1 thread) is refused by the state layer.
    pub fn with_kernel_mode(mut self, mode: sliq_bdd::KernelMode) -> Self {
        self.state.set_kernel_mode(mode);
        self
    }

    /// The kernel flavour currently in effect.
    pub fn kernel_mode(&self) -> sliq_bdd::KernelMode {
        self.state.kernel_mode()
    }

    /// Sifts the qubit variable order now, returning the run's statistics.
    pub fn reorder(&mut self) -> sliq_bdd::ReorderStats {
        self.state.reorder()
    }

    /// Access to the underlying bit-sliced state.
    pub fn state(&self) -> &BitSliceState {
        &self.state
    }

    /// Mutable access to the underlying bit-sliced state.
    pub fn state_mut(&mut self) -> &mut BitSliceState {
        &mut self.state
    }

    /// The exact algebraic amplitude of a basis state (exact up to the
    /// floating-point measurement factor, which is 1 before any measurement).
    pub fn amplitude(&mut self, bits: &[bool]) -> Algebraic {
        self.state.amplitude(bits)
    }

    /// The amplitude of a basis state as a floating-point complex number;
    /// supports arbitrary coefficient widths (deep circuits), unlike the
    /// exact [`BitSliceSimulator::amplitude`] accessor.
    pub fn amplitude_complex(&mut self, bits: &[bool]) -> sliq_math::Complex {
        self.state.amplitude_complex(bits)
    }

    /// The current integer bit width `r` of the coefficient slices.
    pub fn width(&self) -> usize {
        self.state.width()
    }

    /// The global `1/√2ᵏ` exponent.
    pub fn k(&self) -> i64 {
        self.state.k()
    }

    /// The number of live BDD nodes representing the state.
    pub fn node_count(&self) -> usize {
        self.state.node_count()
    }

    /// The number of gates applied so far.
    pub fn gates_applied(&self) -> usize {
        self.gates_applied
    }

    /// Exactness check: `true` iff the squared amplitudes sum to exactly
    /// `2ᵏ` (integer identity, no tolerance).
    pub fn is_exactly_normalized(&mut self) -> bool {
        self.state.is_exactly_normalized()
    }

    /// Captures a checkpoint of the current state (O(r) — no BDD nodes are
    /// copied, the slice roots are pinned in the manager's root registry).
    pub fn snapshot(&mut self) -> crate::StateSnapshot {
        self.state.snapshot()
    }

    /// Rolls the state back to `snapshot` (which stays valid for further
    /// restores until released).
    pub fn restore(&mut self, snapshot: &crate::StateSnapshot) {
        self.state.restore(snapshot);
    }

    /// Releases a checkpoint, unpinning its roots.
    pub fn release_snapshot(&mut self, snapshot: crate::StateSnapshot) {
        self.state.release_snapshot(snapshot);
    }

    /// Samples a full measurement of all qubits from the supplied uniform
    /// values (one per qubit) and restores the state afterwards; see
    /// [`BitSliceState::sample_all`].
    pub fn sample_all(&mut self, us: &[f64]) -> Vec<bool> {
        self.state.sample_all(us)
    }

    fn check_limits(&self) -> Result<(), SimulationError> {
        if let Some(max) = self.limits.max_nodes {
            let live = self.state.manager().allocated_nodes();
            if live > max {
                return Err(SimulationError::ResourceLimit {
                    backend: "bitslice",
                    detail: format!("live BDD nodes {live} exceed the configured limit {max}"),
                });
            }
        }
        if let Some(max) = self.limits.max_bytes {
            let used = self.state.manager().current_bytes();
            if used > max {
                return Err(SimulationError::CapacityExceeded {
                    backend: "bitslice",
                    used_bytes: used,
                    limit_bytes: max,
                });
            }
        }
        Ok(())
    }
}

impl Simulator for BitSliceSimulator {
    fn name(&self) -> &'static str {
        "bitslice"
    }

    fn num_qubits(&self) -> usize {
        self.state.num_qubits()
    }

    fn apply_gate(&mut self, gate: &Gate) -> Result<(), SimulationError> {
        if gate.is_dynamic() {
            // Measurement/reset/feed-forward are interpreted by the session
            // layer via `measure_with`; they never enter the update table.
            return Err(SimulationError::UnsupportedGate {
                backend: "bitslice",
                gate: gate.to_string(),
            });
        }
        gates::apply(&mut self.state, gate);
        self.gates_applied += 1;
        // Between-gate safe point: no apply recursion is in flight, so the
        // kernel may sift the variable order if its trigger fired.
        self.state.maybe_reorder();
        self.state.maybe_collect_garbage();
        self.check_limits()
    }

    fn probability_of_one(&mut self, qubit: usize) -> f64 {
        self.state.probability_of(qubit, true)
    }

    fn probability_of_basis_state(&mut self, bits: &[bool]) -> f64 {
        self.state.probability_of_basis(bits)
    }

    fn measure_with(&mut self, qubit: usize, u: f64) -> bool {
        self.state.measure_with(qubit, u)
    }

    fn total_probability(&mut self) -> f64 {
        self.state.total_probability()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sliq_circuit::Circuit;

    #[test]
    fn runs_a_full_circuit_through_the_trait() {
        let mut circuit = Circuit::new(3);
        circuit.h(0).cx(0, 1).t(1).h(2).cz(1, 2).x(0);
        let mut sim = BitSliceSimulator::new(3);
        sim.run(&circuit).unwrap();
        assert_eq!(sim.gates_applied(), 6);
        assert!((sim.total_probability() - 1.0).abs() < 1e-12);
        assert!(sim.is_exactly_normalized());
        assert!(sim.node_count() > 0);
    }

    #[test]
    fn node_limit_aborts_simulation() {
        let mut circuit = Circuit::new(10);
        for q in 0..10 {
            circuit.h(q);
        }
        for q in 0..9 {
            circuit.cx(q, q + 1);
            circuit.t(q);
            circuit.h(q);
        }
        let mut sim = BitSliceSimulator::new(10).with_limits(BitSliceLimits {
            max_nodes: Some(8),
            ..Default::default()
        });
        assert!(matches!(
            sim.run(&circuit),
            Err(SimulationError::ResourceLimit { .. })
        ));
    }

    #[test]
    fn byte_budget_surfaces_as_capacity_exceeded_and_state_stays_queryable() {
        let mut circuit = Circuit::new(12);
        for q in 0..12 {
            circuit.h(q);
        }
        for q in 0..11 {
            circuit.cx(q, q + 1);
            circuit.t(q);
            circuit.h(q);
        }
        // A 4 KiB budget is below even the empty kernel's footprint, so the
        // first gate boundary must trip it.
        let mut sim = BitSliceSimulator::new(12).with_limits(BitSliceLimits {
            max_nodes: None,
            max_bytes: Some(4 * 1024),
        });
        let err = sim.run(&circuit).unwrap_err();
        match err {
            SimulationError::CapacityExceeded {
                backend,
                used_bytes,
                limit_bytes,
            } => {
                assert_eq!(backend, "bitslice");
                assert!(used_bytes > limit_bytes);
                assert_eq!(limit_bytes, 4 * 1024);
            }
            other => panic!("expected CapacityExceeded, got {other:?}"),
        }
        // Graceful degradation: the partially-advanced state is still
        // queryable after the budget fired.
        let p = sim.probability_of_one(0);
        assert!((0.0..=1.0).contains(&p));
        assert!(sim.node_count() > 0);
    }

    #[test]
    fn bernstein_vazirani_recovers_the_secret_exactly() {
        // BV with secret 1011 over 4 data qubits + 1 ancilla.
        let n = 4;
        let secret = [true, true, false, true];
        let mut circuit = Circuit::new(n + 1);
        circuit.x(n).h(n);
        for q in 0..n {
            circuit.h(q);
        }
        for (q, &bit) in secret.iter().enumerate() {
            if bit {
                circuit.cx(q, n);
            }
        }
        for q in 0..n {
            circuit.h(q);
        }
        let mut sim = BitSliceSimulator::new(n + 1);
        sim.run(&circuit).unwrap();
        for (q, &bit) in secret.iter().enumerate() {
            assert!((sim.probability_of_one(q) - if bit { 1.0 } else { 0.0 }).abs() < 1e-12);
        }
    }
}
