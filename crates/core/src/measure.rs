//! Measurement and probability calculation (Section III-E of the paper).
//!
//! The probability of a measurement outcome is
//!
//! ```text
//! Pr = s² · (1/2ᵏ) · Σᵢ |aᵢω³ + bᵢω² + cᵢω + dᵢ|²
//!    = s² · (1/2ᵏ) · Σᵢ [(aᵢ²+bᵢ²+cᵢ²+dᵢ²) + √2·(aᵢbᵢ + bᵢcᵢ + cᵢdᵢ − aᵢdᵢ)]
//! ```
//!
//! restricted to the basis states compatible with the outcome.  Every sum of
//! products `Σᵢ uᵢ·vᵢ` expands over the bit slices into weighted *SAT counts*
//! of slice conjunctions, which the BDD package counts exactly; the whole
//! quantity is accumulated as an exact `x + y·√2` with big-integer
//! coefficients and only the final division by `2ᵏ` is performed in floating
//! point.  This computes the same value as the paper's monolithic-BDD
//! traversal, with the same "only the last step rounds" property.

use crate::state::{shrink_slices, BitSliceState, FAMILIES};
use sliq_bdd::{Manager, NodeId};
use sliq_bignum::{IBig, Sqrt2Big};

/// `Σᵢ uᵢ·vᵢ` over the basis states selected by `restriction` (all states
/// when `None`), where `u`/`v` are two of the coefficient vectors of
/// `slices`.  A free function over `(&Manager, slices)` so both the state
/// and the non-mutating sampling views ([`ConditionedView`]) share one
/// implementation — and therefore bit-identical floating-point behaviour.
fn weighted_inner_product_of(
    mgr: &Manager,
    slices: &[Vec<NodeId>; 4],
    r: usize,
    n: usize,
    u: usize,
    v: usize,
    restriction: Option<NodeId>,
) -> IBig {
    let mut total = IBig::zero();
    for j in 0..r {
        let fu = slices[u][j];
        if fu.is_false() {
            continue;
        }
        for (l, &fv) in slices[v].iter().enumerate().take(r) {
            if fv.is_false() {
                continue;
            }
            let mut conj = mgr.and(fu, fv);
            if let Some(lit) = restriction {
                conj = mgr.and(conj, lit);
            }
            if conj.is_false() {
                continue;
            }
            let count = mgr.sat_count(conj, n);
            // Two's-complement weights: the top slice weighs −2^{r−1}.
            let negative = (j == r - 1) != (l == r - 1);
            let term = IBig::from_sign_magnitude(negative, count).shl(j + l);
            total += term;
        }
    }
    total
}

/// The exact value of `2ᵏ · Σ |αᵢ|²` over the selected basis states as an
/// `x + y·√2` pair (before the `1/2ᵏ` scaling and the `s²` factor).
fn unscaled_probability_of(
    mgr: &Manager,
    slices: &[Vec<NodeId>; 4],
    r: usize,
    n: usize,
    restriction: Option<NodeId>,
) -> Sqrt2Big {
    let [a, b, c, d] = [0usize, 1, 2, 3];
    let mut square_sum = IBig::zero();
    for family in FAMILIES {
        square_sum += weighted_inner_product_of(
            mgr,
            slices,
            r,
            n,
            family as usize,
            family as usize,
            restriction,
        );
    }
    let mut cross = weighted_inner_product_of(mgr, slices, r, n, a, b, restriction);
    cross += weighted_inner_product_of(mgr, slices, r, n, b, c, restriction);
    cross += weighted_inner_product_of(mgr, slices, r, n, c, d, restriction);
    cross += -weighted_inner_product_of(mgr, slices, r, n, a, d, restriction);
    Sqrt2Big::new(square_sum, cross)
}

/// An immutable, unregistered view of a (possibly conditioned) bit-sliced
/// state: the `4·r` slice roots plus the scalars, **without** root-registry
/// pins.  The batched-sampling descent conditions views functionally —
/// `view.condition(mgr, q, v)` returns a new view, the original stays valid
/// — so independent subtrees of the outcome trie can be explored
/// concurrently through the kernel's `&Manager` apply operations.
///
/// Safety of the missing pins: a view's nodes are only guaranteed alive
/// while no garbage collection runs, and GC needs `&mut Manager` — which
/// cannot coexist with the `&Manager` the view's methods borrow.  The
/// borrow checker therefore enforces the "no GC during descent" discipline;
/// run one afterwards to reclaim the transient conditioned slices.
#[derive(Debug, Clone)]
pub struct ConditionedView {
    slices: [Vec<NodeId>; 4],
    r: usize,
    k: i64,
    num_qubits: usize,
    norm_factor: f64,
}

impl ConditionedView {
    /// A view of the state as it currently is.
    pub fn of_state(state: &BitSliceState) -> Self {
        Self {
            slices: state.slices.clone(),
            r: state.r,
            k: state.k,
            num_qubits: state.num_qubits,
            norm_factor: state.norm_factor,
        }
    }

    /// The view restricted to `qubit = value` **without renormalising** —
    /// the same slice conjunctions and width normalisation as
    /// [`BitSliceState::condition_on`], as a pure function.
    pub fn condition(&self, mgr: &Manager, qubit: usize, value: bool) -> Self {
        let literal = if value {
            mgr.var(qubit)
        } else {
            mgr.nvar(qubit)
        };
        let mut slices = self.slices.clone();
        for family in slices.iter_mut() {
            for slice in family.iter_mut() {
                *slice = mgr.and(*slice, literal);
            }
        }
        let mut r = self.r;
        let mut k = self.k;
        shrink_slices(&mut slices, &mut r, &mut k);
        Self {
            slices,
            r,
            k,
            num_qubits: self.num_qubits,
            norm_factor: self.norm_factor,
        }
    }

    /// Every slice root the view references (`4·r` edges, family-major) —
    /// the set a caller must pin ([`BitSliceState::pin_root`]) to keep a
    /// view alive across later garbage collections, e.g. when caching views
    /// between sampling calls.
    pub fn roots(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.slices.iter().flatten().copied()
    }

    /// The joint probability `Pr[conditions ∧ qubit = 1]` (an exact SAT
    /// count, rounded only at the final conversion).
    pub fn joint_probability_of_one(&self, mgr: &Manager, qubit: usize) -> f64 {
        let literal = mgr.var(qubit);
        let unscaled =
            unscaled_probability_of(mgr, &self.slices, self.r, self.num_qubits, Some(literal));
        unscaled.to_f64_div_pow2(self.k) * self.norm_factor * self.norm_factor
    }

    /// The joint probability of every condition applied so far.
    pub fn total_probability(&self, mgr: &Manager) -> f64 {
        let unscaled = unscaled_probability_of(mgr, &self.slices, self.r, self.num_qubits, None);
        unscaled.to_f64_div_pow2(self.k) * self.norm_factor * self.norm_factor
    }
}

impl BitSliceState {
    /// The exact value of `2ᵏ · Σ |αᵢ|²` over the selected basis states.
    fn unscaled_probability(&self, restriction: Option<NodeId>) -> Sqrt2Big {
        unscaled_probability_of(
            &self.mgr,
            &self.slices,
            self.r,
            self.num_qubits,
            restriction,
        )
    }

    /// The probability that measuring `qubit` yields `value`.
    pub fn probability_of(&self, qubit: usize, value: bool) -> f64 {
        let literal = if value {
            self.mgr.var(qubit)
        } else {
            self.mgr.nvar(qubit)
        };
        let unscaled = self.unscaled_probability(Some(literal));
        unscaled.to_f64_div_pow2(self.k) * self.norm_factor * self.norm_factor
    }

    /// The probability of observing the complete basis state `bits`,
    /// computed from the exact weighted SAT count restricted to the minterm
    /// of `bits` (valid for any coefficient width).
    pub fn probability_of_basis(&self, bits: &[bool]) -> f64 {
        let literals: Vec<(usize, bool)> = bits.iter().enumerate().map(|(q, &b)| (q, b)).collect();
        let minterm = self.mgr.cube(&literals);
        let unscaled = self.unscaled_probability(Some(minterm));
        unscaled.to_f64_div_pow2(self.k) * self.norm_factor * self.norm_factor
    }

    /// The total probability `Σᵢ Pr[i]`, computed exactly and converted to
    /// `f64` at the very end.  Equal to 1 up to the float conversion for any
    /// state produced by unitary evolution.
    pub fn total_probability(&self) -> f64 {
        let unscaled = self.unscaled_probability(None);
        unscaled.to_f64_div_pow2(self.k) * self.norm_factor * self.norm_factor
    }

    /// Exactness check: returns `true` iff the sum of all squared amplitude
    /// magnitudes is *exactly* `2ᵏ` (i.e. the state is exactly normalised as
    /// an algebraic identity — no tolerance involved).  Only meaningful while
    /// no measurement has been performed (`normalization_factor() == 1`).
    pub fn is_exactly_normalized(&self) -> bool {
        let unscaled = self.unscaled_probability(None);
        self.k >= 0 && unscaled.eq_pow2(self.k as usize)
    }

    /// Measures `qubit`, using `u ∈ [0, 1)` to pick the outcome, collapses
    /// the state (Eq. 13: the surviving amplitudes keep their algebraic form,
    /// the `1/√p` renormalisation goes into the floating point factor `s`)
    /// and returns the outcome.
    pub fn measure_with(&mut self, qubit: usize, u: f64) -> bool {
        let p_one = self.probability_of(qubit, true);
        let outcome = u < p_one;
        let p_outcome = if outcome { p_one } else { 1.0 - p_one };
        let literal = if outcome {
            self.mgr.var(qubit)
        } else {
            self.mgr.nvar(qubit)
        };
        for family in 0..4 {
            for j in 0..self.r {
                let old = self.slices[family][j];
                self.slices[family][j] = self.mgr.and(old, literal);
            }
        }
        self.norm_factor /= p_outcome.sqrt();
        self.shrink();
        self.sync_registered_roots();
        self.maybe_collect_garbage();
        outcome
    }

    /// Restricts the state to the subspace where `qubit` reads `value`
    /// **without renormalising**: every slice is conjoined with the literal,
    /// but `s` stays untouched, so [`BitSliceState::total_probability`]
    /// afterwards reports the joint probability of all conditions applied so
    /// far.  This is the building block of non-collapsing conditional-
    /// probability descent (batched sampling): condition, read a conditional
    /// probability, then roll back via [`BitSliceState::restore`].
    ///
    /// Like [`BitSliceState::measure_with`] this shrinks the coefficient
    /// width and may trigger a registered-roots garbage collection —
    /// snapshots are registered, so they survive it; restoring one undoes
    /// both the restriction and the width change.
    pub fn condition_on(&mut self, qubit: usize, value: bool) {
        let literal = if value {
            self.mgr.var(qubit)
        } else {
            self.mgr.nvar(qubit)
        };
        for family in 0..4 {
            for j in 0..self.r {
                let old = self.slices[family][j];
                self.slices[family][j] = self.mgr.and(old, literal);
            }
        }
        self.shrink();
        self.sync_registered_roots();
        self.maybe_collect_garbage();
    }

    /// Measures every qubit (in index order) using the supplied uniform
    /// random values, one per qubit, **collapsing the state** to the sampled
    /// basis state — the historical `sample_all` behaviour under a name that
    /// says what it does.  For repeated sampling use
    /// [`BitSliceState::sample_all`], which restores the state afterwards,
    /// or the batched `Session::sample` API in `sliq_exec`, which draws many
    /// shots for one simulation.
    ///
    /// # Panics
    ///
    /// Panics if `us.len() != num_qubits()`.
    pub fn measure_all_collapsing(&mut self, us: &[f64]) -> Vec<bool> {
        assert_eq!(us.len(), self.num_qubits, "one random value per qubit");
        us.iter()
            .enumerate()
            .map(|(q, &u)| self.measure_with(q, u))
            .collect()
    }

    /// Samples a complete measurement of all qubits (in index order) using
    /// the supplied uniform random values, one per qubit, and **restores the
    /// pre-measurement state** before returning (snapshot → collapse →
    /// rollback).  Use [`BitSliceState::measure_all_collapsing`] when the
    /// collapsed state itself is wanted.
    ///
    /// # Panics
    ///
    /// Panics if `us.len() != num_qubits()`.
    pub fn sample_all(&mut self, us: &[f64]) -> Vec<bool> {
        let snapshot = self.snapshot();
        let outcome = self.measure_all_collapsing(us);
        self.restore(&snapshot);
        self.release_snapshot(snapshot);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use sliq_circuit::Gate;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn basis_state_probabilities() {
        let state = BitSliceState::with_initial_bits(&[true, false]);
        assert!(close(state.probability_of(0, true), 1.0));
        assert!(close(state.probability_of(1, true), 0.0));
        assert!(close(state.probability_of_basis(&[true, false]), 1.0));
        assert!(close(state.total_probability(), 1.0));
        assert!(state.is_exactly_normalized());
    }

    #[test]
    fn bell_state_probabilities_and_exactness() {
        let mut state = BitSliceState::new(2);
        gates::apply(&mut state, &Gate::H(0));
        gates::apply(
            &mut state,
            &Gate::Cnot {
                control: 0,
                target: 1,
            },
        );
        assert!(close(state.probability_of(0, true), 0.5));
        assert!(close(state.probability_of(1, false), 0.5));
        assert!(close(state.probability_of_basis(&[true, true]), 0.5));
        assert!(close(state.probability_of_basis(&[true, false]), 0.0));
        assert!(state.is_exactly_normalized());
        assert!(close(state.total_probability(), 1.0));
    }

    #[test]
    fn t_rich_circuit_stays_exactly_normalized() {
        // A circuit whose floating-point simulation accumulates rounding
        // error; the algebraic state must remain *exactly* normalised.
        let mut state = BitSliceState::new(3);
        for layer in 0..10 {
            for q in 0..3 {
                gates::apply(&mut state, &Gate::H(q));
                gates::apply(&mut state, &Gate::T(q));
            }
            gates::apply(
                &mut state,
                &Gate::Cnot {
                    control: layer % 3,
                    target: (layer + 1) % 3,
                },
            );
        }
        assert!(state.is_exactly_normalized());
        assert!(close(state.total_probability(), 1.0));
    }

    #[test]
    fn measurement_collapses_ghz_state() {
        let mut state = BitSliceState::new(3);
        gates::apply(&mut state, &Gate::H(0));
        gates::apply(
            &mut state,
            &Gate::Cnot {
                control: 0,
                target: 1,
            },
        );
        gates::apply(
            &mut state,
            &Gate::Cnot {
                control: 1,
                target: 2,
            },
        );
        let outcome = state.measure_with(0, 0.25); // u < 0.5 ⇒ outcome 1
        assert!(outcome);
        for q in 1..3 {
            assert!(close(state.probability_of(q, true), 1.0));
        }
        assert!(close(state.total_probability(), 1.0));
        assert!((state.normalization_factor() - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn sample_all_follows_forced_random_values_and_restores_the_state() {
        let mut state = BitSliceState::new(2);
        gates::apply(&mut state, &Gate::H(0));
        gates::apply(
            &mut state,
            &Gate::Cnot {
                control: 0,
                target: 1,
            },
        );
        // Force qubit 0 to outcome 1; qubit 1 must follow deterministically.
        let sample = state.sample_all(&[0.0, 0.99]);
        assert_eq!(sample, vec![true, true]);
        // Non-destructive: the Bell state survives and can be sampled again,
        // this time forcing the other branch.
        assert!(close(state.probability_of(0, true), 0.5));
        assert!(close(state.normalization_factor(), 1.0));
        let sample = state.sample_all(&[0.99, 0.99]);
        assert_eq!(sample, vec![false, false]);
    }

    #[test]
    fn measure_all_collapsing_collapses() {
        let mut state = BitSliceState::new(2);
        gates::apply(&mut state, &Gate::H(0));
        gates::apply(
            &mut state,
            &Gate::Cnot {
                control: 0,
                target: 1,
            },
        );
        let sample = state.measure_all_collapsing(&[0.0, 0.99]);
        assert_eq!(sample, vec![true, true]);
        assert!(close(state.probability_of(0, true), 1.0));
        assert!((state.normalization_factor() - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn condition_on_tracks_joint_probabilities_and_snapshots_roll_back() {
        // GHZ(3): Pr[q0=1] = 1/2, Pr[q0=1 ∧ q1=1] = 1/2, Pr[q0=1 ∧ q1=0] = 0.
        let mut state = BitSliceState::new(3);
        gates::apply(&mut state, &Gate::H(0));
        for (c, t) in [(0, 1), (1, 2)] {
            gates::apply(
                &mut state,
                &Gate::Cnot {
                    control: c,
                    target: t,
                },
            );
        }
        let snapshot = state.snapshot();
        state.condition_on(0, true);
        assert!(close(state.total_probability(), 0.5));
        // A conditional read on the restricted state: Pr[cond ∧ q1=1].
        assert!(close(state.probability_of(1, true), 0.5));
        state.condition_on(1, false);
        assert!(close(state.total_probability(), 0.0));
        // Roll back: the full GHZ state returns, including width and k.
        state.restore(&snapshot);
        assert!(close(state.total_probability(), 1.0));
        assert!(close(state.probability_of(0, true), 0.5));
        assert!(state.is_exactly_normalized());
        // The snapshot survives GC while registered.
        state.collect_garbage();
        state.restore(&snapshot);
        assert!(close(state.total_probability(), 1.0));
        state.release_snapshot(snapshot);
    }

    #[test]
    fn probabilities_respect_the_normalization_factor() {
        let mut state = BitSliceState::new(2);
        gates::apply(&mut state, &Gate::H(0));
        gates::apply(&mut state, &Gate::H(1));
        state.measure_with(0, 0.9); // outcome 0 with probability 1/2
                                    // After collapsing qubit 0, qubit 1 is still uniform and the total
                                    // probability is 1 again thanks to the factor s.
        assert!(close(state.probability_of(1, true), 0.5));
        assert!(close(state.total_probability(), 1.0));
    }
}
