//! The monolithic "hyper-function" BDD of Eq. (12) / Fig. 2 of the paper.
//!
//! The `4·r` slice BDDs can be combined into a single BDD by introducing
//! auxiliary encoding variables below the qubit variables: two variables
//! select the coefficient family (a/b/c/d) and `⌈log₂ r⌉` variables select the
//! bit position.  The paper performs measurement by traversing this combined
//! BDD; in this implementation measurement is computed directly from the
//! slices (see [`crate::measure`]), and the monolithic form is exposed for
//! structural statistics (shared-node counts, Fig. 2-style inspection) and
//! for cross-checking.

use crate::state::BitSliceState;
use sliq_bdd::{FxHashMap, NodeId};

/// Structural information about the monolithic BDD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonolithicInfo {
    /// Root of the combined BDD.
    pub root: NodeId,
    /// Number of BDD nodes reachable from the root.
    pub node_count: usize,
    /// Number of encoding variables appended below the qubit variables.
    pub encoding_vars: usize,
}

impl BitSliceState {
    /// Builds the monolithic hyper-function BDD combining all `4·r` slices.
    ///
    /// Encoding variables are appended below the qubit variables on first
    /// use, matching the variable-order requirement of the paper's
    /// measurement procedure (qubits above encoding variables).
    pub fn monolithic(&mut self) -> MonolithicInfo {
        let r = self.r;
        let index_bits = usize::BITS as usize - (r - 1).leading_zeros() as usize;
        let index_bits = index_bits.max(1);
        let encoding_vars = 2 + index_bits;
        let first = self.mgr.add_vars(encoding_vars);
        let family_var0 = first;
        let family_var1 = first + 1;
        let index_vars: Vec<usize> = (0..index_bits).map(|b| first + 2 + b).collect();

        let mut root = NodeId::FALSE;
        for family in 0..4 {
            for (i, &slice) in self.slices[family].iter().enumerate() {
                if slice.is_false() {
                    continue;
                }
                // Family selector: x0 encodes the high bit, x1 the low bit.
                let mut literals = vec![
                    (family_var0, family & 0b10 != 0),
                    (family_var1, family & 0b01 != 0),
                ];
                for (b, &v) in index_vars.iter().enumerate() {
                    literals.push((v, (i >> b) & 1 == 1));
                }
                let cube = self.mgr.cube(&literals);
                let labelled = self.mgr.and(cube, slice);
                root = self.mgr.or(root, labelled);
            }
        }
        MonolithicInfo {
            root,
            node_count: self.mgr.node_count(root),
            encoding_vars,
        }
    }

    /// The paper's measurement procedure (Fig. 2): computes
    /// `Pr[qubit = 1]` by a recursive traversal of the monolithic BDD,
    /// accumulating node probabilities with a per-node memo table instead of
    /// the weighted-SAT-count formulation used by
    /// [`BitSliceState::probability_of`].  Provided both as a faithful
    /// re-implementation of §III-E and as an independent cross-check of the
    /// primary path (the two must agree to floating point accuracy).
    ///
    /// The implementation enumerates, for every reachable sub-BDD rooted at
    /// or below the qubit levels, the amplitude it encodes (by decoding the
    /// family/bit encoding variables) and sums `|α|²` weighted by how many
    /// qubit assignments reach it — which is exactly the accumulated
    /// probability of Fig. 2, evaluated bottom-up.
    pub fn probability_of_one_via_monolithic(&mut self, qubit: usize) -> f64 {
        let n = self.num_qubits;
        let r = self.r;
        let k = self.k;
        let norm = self.norm_factor;
        let info = self.monolithic();
        let first_encoding_var = self.mgr.num_vars() - info.encoding_vars;
        let index_bits = info.encoding_vars - 2;

        // Decode the amplitude encoded by the sub-BDD `node`, which only
        // depends on the encoding variables.
        let mut amplitude_memo: FxHashMap<NodeId, f64> = FxHashMap::default();
        let mut decode_norm_sqr = |state: &mut BitSliceState, node: NodeId| -> f64 {
            if let Some(&p) = amplitude_memo.get(&node) {
                return p;
            }
            let mut coeffs = [0.0f64; 4];
            for (family, coeff) in coeffs.iter_mut().enumerate() {
                let mut value = 0.0f64;
                for bit in 0..r {
                    let mut literals = vec![
                        (first_encoding_var, family & 0b10 != 0),
                        (first_encoding_var + 1, family & 0b01 != 0),
                    ];
                    for b in 0..index_bits {
                        literals.push((first_encoding_var + 2 + b, (bit >> b) & 1 == 1));
                    }
                    let restricted = state.mgr.cofactor_cube(node, &literals);
                    debug_assert!(restricted.is_terminal());
                    if restricted.is_true() {
                        let weight = 2f64.powi(bit as i32);
                        if bit == r - 1 {
                            value -= weight;
                        } else {
                            value += weight;
                        }
                    }
                }
                *coeff = value;
            }
            let (a, b, c, d) = (coeffs[0], coeffs[1], coeffs[2], coeffs[3]);
            let s = std::f64::consts::FRAC_1_SQRT_2;
            let re = (c - a) * s + d;
            let im = (a + c) * s + b;
            let p = (re * re + im * im) * 2f64.powi(-(k as i32));
            amplitude_memo.insert(node, p);
            p
        };

        // Accumulated probability of a sub-BDD over the remaining qubit
        // variables `level..n`, restricted to assignments with `qubit = 1`.
        // Memoised per (node, level) — the hash map plays the role of the
        // per-node accumulated probabilities of Fig. 2.
        #[allow(clippy::too_many_arguments)]
        fn accumulate(
            state: &mut BitSliceState,
            node: NodeId,
            level: usize,
            n: usize,
            qubit: usize,
            memo: &mut FxHashMap<(NodeId, usize), f64>,
            decode: &mut dyn FnMut(&mut BitSliceState, NodeId) -> f64,
        ) -> f64 {
            if level == n {
                return decode(state, node);
            }
            if let Some(&p) = memo.get(&(node, level)) {
                return p;
            }
            let (node_level, low, high) = match state.mgr.node(node) {
                Some((l, low, high)) if l < n => (l, low, high),
                // The node lives below the qubit levels (or is a terminal):
                // the function does not depend on the remaining qubits.
                _ => (n, node, node),
            };
            // The measured qubit is identified by *variable*; with dynamic
            // reordering the qubit block may be permuted within the top `n`
            // levels (the reorder window pins the encoding variables below).
            let measured_here = state.mgr.var_at_level(level) == qubit;
            let result = if node_level > level {
                // The variable at `level` is skipped: both branches are
                // identical.
                let below = accumulate(state, node, level + 1, n, qubit, memo, decode);
                if measured_here {
                    below
                } else {
                    2.0 * below
                }
            } else {
                let p0 = accumulate(state, low, level + 1, n, qubit, memo, decode);
                let p1 = accumulate(state, high, level + 1, n, qubit, memo, decode);
                if measured_here {
                    p1
                } else {
                    p0 + p1
                }
            };
            memo.insert((node, level), result);
            result
        }

        let mut memo: FxHashMap<(NodeId, usize), f64> = FxHashMap::default();
        let p = accumulate(
            self,
            info.root,
            0,
            n,
            qubit,
            &mut memo,
            &mut decode_norm_sqr,
        );
        p * norm * norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use sliq_circuit::Gate;

    #[test]
    fn monolithic_of_a_basis_state_is_one_cube() {
        let mut state = BitSliceState::with_initial_bits(&[true, false, true]);
        let info = state.monolithic();
        // A single minterm over 3 qubit variables plus the encoding cube.
        assert!(info.node_count >= 3);
        assert!(!info.root.is_false());
        assert!(info.encoding_vars >= 3);
    }

    #[test]
    fn monolithic_grows_with_superposition_but_stays_polynomial_for_ghz() {
        let n = 10;
        let mut state = BitSliceState::new(n);
        gates::apply(&mut state, &Gate::H(0));
        for q in 1..n {
            gates::apply(
                &mut state,
                &Gate::Cnot {
                    control: q - 1,
                    target: q,
                },
            );
        }
        let info = state.monolithic();
        assert!(info.node_count > 0);
        assert!(
            info.node_count < 200,
            "GHZ hyper-function must stay small, got {}",
            info.node_count
        );
    }

    #[test]
    fn monolithic_measurement_matches_the_satcount_path() {
        // Fig. 2 traversal vs the weighted-SAT-count probability on a
        // non-trivial state with phases and entanglement.
        let mut state = BitSliceState::new(4);
        let gates: Vec<Gate> = vec![
            Gate::H(0),
            Gate::T(0),
            Gate::Cnot {
                control: 0,
                target: 1,
            },
            Gate::H(2),
            Gate::S(2),
            Gate::Cz {
                control: 2,
                target: 3,
            },
            Gate::RyPi2(3),
            Gate::Toffoli {
                controls: vec![0, 2],
                target: 3,
            },
        ];
        for g in &gates {
            gates::apply(&mut state, g);
        }
        for q in 0..4 {
            let via_satcount = state.probability_of(q, true);
            let via_monolithic = state.probability_of_one_via_monolithic(q);
            assert!(
                (via_satcount - via_monolithic).abs() < 1e-9,
                "qubit {q}: {via_satcount} vs {via_monolithic}"
            );
        }
    }

    #[test]
    fn monolithic_measurement_handles_collapsed_states() {
        let mut state = BitSliceState::new(3);
        gates::apply(&mut state, &Gate::H(0));
        gates::apply(
            &mut state,
            &Gate::Cnot {
                control: 0,
                target: 2,
            },
        );
        state.measure_with(0, 0.2); // outcome 1, collapses qubit 2 too
        let p = state.probability_of_one_via_monolithic(2);
        assert!((p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn monolithic_agrees_with_slices_on_evaluation() {
        let mut state = BitSliceState::new(2);
        gates::apply(&mut state, &Gate::H(0));
        gates::apply(
            &mut state,
            &Gate::Cnot {
                control: 0,
                target: 1,
            },
        );
        let r = state.width();
        let info = state.monolithic();
        let total_vars = state.manager().num_vars();
        // Check a few (qubit assignment, family, bit) points against the raw
        // slices: d-family bit 0 of |11⟩ must be 1 for the Bell state.
        let family = 3usize; // d
        let bit = 0usize;
        let mut assignment = vec![false; total_vars];
        assignment[0] = true;
        assignment[1] = true;
        // Encoding variables start right after the qubit variables.
        let first = total_vars - info.encoding_vars;
        assignment[first] = family & 0b10 != 0;
        assignment[first + 1] = family & 0b01 != 0;
        for b in 0..(info.encoding_vars - 2) {
            assignment[first + 2 + b] = (bit >> b) & 1 == 1;
        }
        let from_monolithic = state.manager().eval(info.root, &assignment);
        let from_slice = state
            .manager()
            .eval(state.family_slices(crate::Family::D)[0], &assignment[..2]);
        assert_eq!(from_monolithic, from_slice);
        assert!(from_slice, "Bell state has d₀ = 1 on |11⟩");
        let _ = r;
    }
}
