//! Symbolic two's-complement arithmetic over bit-sliced vectors.
//!
//! Every arithmetic gate of Table II boils down to a ripple-carry adder whose
//! sum and carry are the Boolean functions
//!
//! ```text
//! Sum(A, B, C) = A ⊕ B ⊕ C
//! Car(A, B, C) = A·B ∨ (A ∨ B)·C
//! ```
//!
//! applied slice-wise, with a per-row conditional complement (for the
//! subtracted operand) folded into the initial carry — exactly the
//! construction the paper derives for the Hadamard gate in Proposition 1.

use sliq_bdd::{Manager, NodeId};

/// `Sum(a, b, c) = a ⊕ b ⊕ c` — the full-adder sum function over BDDs,
/// computed by the manager's single-pass three-operand XOR.
pub fn sum(mgr: &Manager, a: NodeId, b: NodeId, c: NodeId) -> NodeId {
    mgr.xor3(a, b, c)
}

/// `Car(a, b, c) = a·b ∨ (a ∨ b)·c` — the full-adder carry function, which
/// is exactly the three-operand majority, computed in a single pass.
pub fn carry(mgr: &Manager, a: NodeId, b: NodeId, c: NodeId) -> NodeId {
    mgr.maj(a, b, c)
}

/// Slice-wise ripple-carry addition `A + B + carry_in` of two equally long
/// bit-sliced vectors.  The caller is responsible for sign-extending the
/// operands so that no overflow can occur (one extra slice suffices for a
/// single addition).
pub fn add_sliced(mgr: &Manager, a: &[NodeId], b: &[NodeId], carry_in: NodeId) -> Vec<NodeId> {
    debug_assert_eq!(a.len(), b.len(), "operands must have equal width");
    let mut out = Vec::with_capacity(a.len());
    let mut c = carry_in;
    for j in 0..a.len() {
        out.push(sum(mgr, a[j], b[j], c));
        if j + 1 < a.len() {
            c = carry(mgr, a[j], b[j], c);
        }
    }
    out
}

/// Per-row conditional negation of a bit-sliced vector: rows where `cond`
/// holds are replaced by their two's-complement negation, other rows are
/// unchanged.
///
/// Complementing every slice where `cond` holds and adding `cond` as the
/// initial carry gives `out_j = v_j ⊕ cond ⊕ c_j` with the carry recurrence
/// `c_0 = cond`, `c_{j+1} = c_j ∧ ¬v_j` (the `+1` ripple only propagates
/// through zero bits of `v`), so each slice costs one three-operand XOR and
/// one AND instead of a full adder step.  With the kernel's complement
/// edges, `¬v_j` is an O(1) bit flip, so the per-slice negations allocate
/// no BDD work at all.
pub fn negate_where(mgr: &Manager, v: &[NodeId], cond: NodeId) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(v.len());
    let mut carry = cond;
    for (j, &f) in v.iter().enumerate() {
        out.push(mgr.xor3(f, cond, carry));
        if j + 1 < v.len() {
            let not_f = mgr.not(f);
            carry = mgr.and(carry, not_f);
        }
    }
    out
}

/// The value at every row with qubit `t` flipped (the "swap halves along
/// qubit `t`" permutation used by the X/Y gates): `F'(…, qₜ, …) = F(…, ¬qₜ, …)`,
/// computed by the manager's one-pass cofactor swap.
pub fn swap_along(mgr: &Manager, f: NodeId, t: usize) -> NodeId {
    mgr.flip_var(f, t)
}

/// The value at every row with qubits `t1` and `t2` exchanged (the SWAP
/// permutation used by the Fredkin gate).
pub fn swap_pair(mgr: &Manager, f: NodeId, t1: usize, t2: usize) -> NodeId {
    let f00 = mgr.cofactor_cube(f, &[(t1, false), (t2, false)]);
    let f01 = mgr.cofactor_cube(f, &[(t1, false), (t2, true)]);
    let f10 = mgr.cofactor_cube(f, &[(t1, true), (t2, false)]);
    let f11 = mgr.cofactor_cube(f, &[(t1, true), (t2, true)]);
    // New value at (t1, t2) = (x, y) is the old value at (y, x).
    let when_t1_set = mgr.mux_var(t2, f11, f01);
    let when_t1_clear = mgr.mux_var(t2, f10, f00);
    mgr.mux_var(t1, when_t1_set, when_t1_clear)
}

/// The replicated cofactor `F|_{qₜ = value}` (a function that no longer
/// depends on qubit `t`).
pub fn cofactor_replicated(mgr: &Manager, f: NodeId, t: usize, value: bool) -> NodeId {
    mgr.cofactor(f, t, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evaluates a bit-sliced vector at a basis assignment as a signed
    /// integer (two's complement, MSB is the sign slice).
    fn value_at(mgr: &Manager, v: &[NodeId], assignment: &[bool]) -> i64 {
        let mut out = 0i64;
        for (j, &f) in v.iter().enumerate() {
            if mgr.eval(f, assignment) {
                if j == v.len() - 1 {
                    out -= 1 << j;
                } else {
                    out += 1 << j;
                }
            }
        }
        out
    }

    /// Builds a 4-bit constant vector (same value at every row).
    fn constant_vector(mgr: &Manager, value: i64, width: usize) -> Vec<NodeId> {
        (0..width)
            .map(|j| mgr.constant((value >> j) & 1 == 1))
            .collect()
    }

    #[test]
    fn adder_matches_integer_addition() {
        let mgr = Manager::new(2);
        for x in -4i64..4 {
            for y in -4i64..4 {
                // 5-bit two's complement holds the sum of two 4-bit values.
                let a = constant_vector(&mgr, x & 0x1f, 5);
                let b = constant_vector(&mgr, y & 0x1f, 5);
                let s = add_sliced(&mgr, &a, &b, NodeId::FALSE);
                assert_eq!(value_at(&mgr, &s, &[false, false]), x + y, "{x}+{y}");
            }
        }
    }

    #[test]
    fn conditional_negation_only_affects_matching_rows() {
        let mgr = Manager::new(1);
        // Vector whose value is +3 at every row, width 4.
        let v = constant_vector(&mgr, 3, 4);
        let q0 = mgr.var(0);
        let negated = negate_where(&mgr, &v, q0);
        assert_eq!(value_at(&mgr, &negated, &[false]), 3);
        assert_eq!(value_at(&mgr, &negated, &[true]), -3);
        // Negating where `false` never changes anything.
        let untouched = negate_where(&mgr, &v, NodeId::FALSE);
        assert_eq!(value_at(&mgr, &untouched, &[true]), 3);
        // Negating everywhere is plain negation.
        let all = negate_where(&mgr, &v, NodeId::TRUE);
        assert_eq!(value_at(&mgr, &all, &[false]), -3);
    }

    #[test]
    fn negation_of_minimum_value_needs_the_extended_width() {
        let mgr = Manager::new(1);
        // -8 in 4 bits; its negation (+8) needs 5 bits, so extend first.
        let mut v = constant_vector(&mgr, -8i64 & 0xf, 4);
        let msb = *v.last().unwrap();
        v.push(msb); // sign extension to 5 bits
        let negated = negate_where(&mgr, &v, NodeId::TRUE);
        assert_eq!(value_at(&mgr, &negated, &[false]), 8);
    }

    #[test]
    fn swap_along_exchanges_the_two_halves() {
        let mgr = Manager::new(2);
        // f = q0 (value 1 exactly on rows with q0 = 1)
        let f = mgr.var(0);
        let swapped = swap_along(&mgr, f, 0);
        assert!(mgr.eval(swapped, &[false, false]));
        assert!(!mgr.eval(swapped, &[true, false]));
        // Swapping along an independent qubit is a no-op.
        let same = swap_along(&mgr, f, 1);
        assert_eq!(same, f);
    }

    #[test]
    fn swap_pair_permutes_rows() {
        let mgr = Manager::new(3);
        // f is true exactly on (q0, q1, q2) = (1, 0, *).
        let q0 = mgr.var(0);
        let nq1 = mgr.nvar(1);
        let f = mgr.and(q0, nq1);
        let g = swap_pair(&mgr, f, 0, 1);
        // g must be true exactly on (0, 1, *).
        assert!(mgr.eval(g, &[false, true, false]));
        assert!(mgr.eval(g, &[false, true, true]));
        assert!(!mgr.eval(g, &[true, false, false]));
        assert!(!mgr.eval(g, &[true, true, false]));
        // Swapping twice restores the original function.
        let back = swap_pair(&mgr, g, 0, 1);
        assert_eq!(back, f);
    }

    #[test]
    fn mux_var_is_a_row_multiplexer() {
        let mgr = Manager::new(1);
        let three = constant_vector(&mgr, 3, 4);
        let five = constant_vector(&mgr, 5, 4);
        let mixed: Vec<_> = three
            .iter()
            .zip(five.iter())
            .map(|(&x, &y)| mgr.mux_var(0, x, y))
            .collect();
        assert_eq!(value_at(&mgr, &mixed, &[true]), 3);
        assert_eq!(value_at(&mgr, &mixed, &[false]), 5);
    }
}
