//! The pre-characterised Boolean update formulas of Table II.
//!
//! Each supported gate updates the `4·r` slice BDDs directly — no unitary
//! matrix is ever materialised.  Permutation-style gates (X, CNOT, Toffoli,
//! Fredkin) only rearrange rows; diagonal and rotation gates additionally run
//! the symbolic two's-complement adders from [`crate::arith`].
//!
//! The formulas were re-derived from the gate matrices (several overlines in
//! the published table are typographically ambiguous) and are cross-checked
//! against the dense state-vector oracle by the crate's property tests.
//!
//! # Parallel slice application
//!
//! Every gate decomposes into per-slice BDD updates that are mutually
//! independent given the kernel's concurrent manager (`&Manager` apply
//! operations since the sharded-kernel rework).  The fan-out has two
//! granularities:
//!
//! * **permutation-shaped stages** (X/CNOT/Toffoli/Fredkin row permutations,
//!   the cofactor and swap stages of H/Ry/Rx/Y, the family selection of
//!   S/S†/T/T†) update each of the `4·r` slices independently — they fan
//!   out one task per slice;
//! * **adder-shaped stages** (the ripple-carry chains of H/Ry/Rx and the
//!   conditional negations of Z/CZ/Y/S-family) carry a dependency across
//!   the slices of one family but none across families — they fan out one
//!   task per family (4-way).
//!
//! The scheduling never changes results: each task writes its own output
//! index, and hash consing keeps node identity canonical no matter which
//! thread inserts a node first.  [`crate::state::BitSliceState::set_threads`]
//! (or `SLIQ_THREADS`) configures the width; 1 runs everything inline.

use crate::arith;
use crate::state::{BitSliceState, Family};
use sliq_bdd::{Manager, NodeId};
use sliq_circuit::Gate;

/// Applies `gate` to the bit-sliced state and re-registers the new slice
/// roots with the manager (the registry is what keeps the roots valid
/// across garbage collection and automatic variable reordering).
pub(crate) fn apply(state: &mut BitSliceState, gate: &Gate) {
    apply_inner(state, gate);
    state.sync_registered_roots();
}

fn apply_inner(state: &mut BitSliceState, gate: &Gate) {
    match gate {
        Gate::X(t) => permute_all(state, |mgr, f| arith::swap_along(mgr, f, *t)),
        Gate::Cnot { control, target } => {
            let (c, t) = (*control, *target);
            permute_all(state, |mgr, f| {
                let swapped = arith::swap_along(mgr, f, t);
                mgr.mux_var(c, swapped, f)
            });
        }
        Gate::Toffoli { controls, target } => {
            let t = *target;
            let controls = controls.clone();
            permute_all(state, move |mgr, f| {
                let swapped = arith::swap_along(mgr, f, t);
                let control_vars: Vec<NodeId> = controls.iter().map(|&c| mgr.var(c)).collect();
                let qc = mgr.and_many(&control_vars);
                mgr.ite(qc, swapped, f)
            });
        }
        Gate::Fredkin {
            controls,
            target1,
            target2,
        } => {
            let (t1, t2) = (*target1, *target2);
            let controls = controls.clone();
            permute_all(state, move |mgr, f| {
                let swapped = arith::swap_pair(mgr, f, t1, t2);
                let control_vars: Vec<NodeId> = controls.iter().map(|&c| mgr.var(c)).collect();
                let qc = mgr.and_many(&control_vars);
                mgr.ite(qc, swapped, f)
            });
        }
        Gate::Z(t) => {
            state.extend(1);
            let cond = state.mgr.var(*t);
            negate_all_where(state, cond);
            state.shrink();
        }
        Gate::Cz { control, target } => {
            state.extend(1);
            let qc = state.mgr.var(*control);
            let qt = state.mgr.var(*target);
            let cond = state.mgr.and(qc, qt);
            negate_all_where(state, cond);
            state.shrink();
        }
        Gate::S(t) => apply_phase_family_rotation(state, *t, PhaseRotation::I),
        Gate::Sdg(t) => apply_phase_family_rotation(state, *t, PhaseRotation::MinusI),
        Gate::T(t) => apply_phase_family_rotation(state, *t, PhaseRotation::Omega),
        Gate::Tdg(t) => apply_phase_family_rotation(state, *t, PhaseRotation::OmegaInv),
        Gate::Y(t) => apply_y(state, *t),
        Gate::H(t) => apply_hadamard_like(state, *t, HadamardKind::H),
        Gate::RyPi2(t) => apply_hadamard_like(state, *t, HadamardKind::RyPi2),
        Gate::RxPi2(t) => apply_rx_pi2(state, *t),
        // Dynamic operations are interpreted by the session layer (which
        // drives `measure_with` / collapse directly); the simulator-facing
        // `apply_gate` rejects them before reaching this table.
        Gate::Measure { .. } | Gate::Reset { .. } | Gate::Conditional { .. } => {
            unreachable!("dynamic operation `{gate}` reached the unitary update table")
        }
    }
}

/// The `4·r` slice BDDs as one flat task list (family-major, the layout the
/// fan-out helpers index).
fn flat_slices(state: &BitSliceState) -> Vec<NodeId> {
    state.slices.iter().flatten().copied().collect()
}

/// Regroups a family-major flat vector back into the four family vectors.
fn regroup(flat: Vec<NodeId>, r: usize) -> [Vec<NodeId>; 4] {
    let mut out: [Vec<NodeId>; 4] = Default::default();
    for (family, chunk) in flat.chunks(r).enumerate() {
        out[family] = chunk.to_vec();
    }
    out
}

/// Applies the same row permutation to every slice of every family — `4·r`
/// independent tasks.
fn permute_all(state: &mut BitSliceState, permute: impl Fn(&Manager, NodeId) -> NodeId + Sync) {
    let inputs = flat_slices(state);
    let flat = state.par_map(inputs.len(), |mgr, i| permute(mgr, inputs[i]));
    state.slices = regroup(flat, state.r);
}

/// Conditionally negates every family where `cond` holds (used by Z and CZ):
/// a carry chain within each family, so the fan-out is per family.
fn negate_all_where(state: &mut BitSliceState, cond: NodeId) {
    let slices = state.slices.clone();
    let out = state.par_map(4, |mgr, family| {
        arith::negate_where(mgr, &slices[family], cond)
    });
    state.slices = out.try_into().expect("four families");
}

/// The four phase rotations of the form `diag(1, φ)` whose φ is a power of ω:
/// they permute the coefficient families on rows where the target is 1.
#[derive(Debug, Clone, Copy)]
enum PhaseRotation {
    /// S: multiply by `i = ω²`, i.e. `(a, b, c, d) → (c, d, −a, −b)`.
    I,
    /// S†: multiply by `−i`, i.e. `(a, b, c, d) → (−c, −d, a, b)`.
    MinusI,
    /// T: multiply by `ω`, i.e. `(a, b, c, d) → (b, c, d, −a)`.
    Omega,
    /// T†: multiply by `ω⁻¹`, i.e. `(a, b, c, d) → (−d, a, b, c)`.
    OmegaInv,
}

fn apply_phase_family_rotation(state: &mut BitSliceState, t: usize, rotation: PhaseRotation) {
    state.extend(1);
    let qt = state.mgr.var(t);
    let r = state.r;
    let a = state.slices[Family::A as usize].clone();
    let b = state.slices[Family::B as usize].clone();
    let c = state.slices[Family::C as usize].clone();
    let d = state.slices[Family::D as usize].clone();
    // For each output family: which input family feeds the rows with qₜ = 1,
    // and whether that contribution is negated there.
    let plan: [(&Vec<NodeId>, &Vec<NodeId>, bool); 4] = match rotation {
        PhaseRotation::I => [
            (&c, &a, false),
            (&d, &b, false),
            (&a, &c, true),
            (&b, &d, true),
        ],
        PhaseRotation::MinusI => [
            (&c, &a, true),
            (&d, &b, true),
            (&a, &c, false),
            (&b, &d, false),
        ],
        PhaseRotation::Omega => [
            (&b, &a, false),
            (&c, &b, false),
            (&d, &c, false),
            (&a, &d, true),
        ],
        PhaseRotation::OmegaInv => [
            (&d, &a, true),
            (&a, &b, false),
            (&b, &c, false),
            (&c, &d, false),
        ],
    };
    // Stage 1: the per-row family selection — 4·r independent multiplexers.
    let mixed = state.par_map(4 * r, |mgr, task| {
        let (family, j) = (task / r, task % r);
        let (source_when_set, keep_otherwise, _) = plan[family];
        mgr.mux_var(t, source_when_set[j], keep_otherwise[j])
    });
    // Stage 2: the conditional negations — one carry chain per family.
    let out = state.par_map(4, |mgr, family| {
        let slice = &mixed[family * r..(family + 1) * r];
        if plan[family].2 {
            arith::negate_where(mgr, slice, qt)
        } else {
            slice.to_vec()
        }
    });
    state.slices = out.try_into().expect("four families");
    state.shrink();
}

/// Applies the "swap halves along qubit `t`" permutation to every slice of
/// every family, returning the permuted copies (originals untouched) —
/// `4·r` independent tasks.
fn swap_all_families(state: &BitSliceState, t: usize) -> [Vec<NodeId>; 4] {
    let inputs = flat_slices(state);
    let flat = state.par_map(inputs.len(), |mgr, i| arith::swap_along(mgr, inputs[i], t));
    regroup(flat, state.r)
}

/// Pauli-Y: swap the two halves along the target and rotate the coefficient
/// families by `±i` depending on the row.
fn apply_y(state: &mut BitSliceState, t: usize) {
    state.extend(1);
    let qt = state.mgr.var(t);
    let not_qt = state.mgr.not(qt);
    let swapped = swap_all_families(state, t);
    // new a = ±swap(c): negated on rows with qₜ = 0 (−i branch), and so on;
    // each conditional negation is a per-family carry chain.
    let plan: [(&Vec<NodeId>, NodeId); 4] = [
        (&swapped[Family::C as usize], not_qt),
        (&swapped[Family::D as usize], not_qt),
        (&swapped[Family::A as usize], qt),
        (&swapped[Family::B as usize], qt),
    ];
    let out = state.par_map(4, |mgr, family| {
        arith::negate_where(mgr, plan[family].0, plan[family].1)
    });
    state.slices = out.try_into().expect("four families");
    state.shrink();
}

/// H and Ry(π/2) share the same structure: the new value is
/// `F|_{qₜ=0} ± F|_{qₜ=1}` with the sign depending on the row, and `k`
/// increases by one for the `1/√2` factor (Proposition 1 of the paper).
#[derive(Debug, Clone, Copy)]
enum HadamardKind {
    H,
    RyPi2,
}

fn apply_hadamard_like(state: &mut BitSliceState, t: usize, kind: HadamardKind) {
    state.extend(1);
    let qt = state.mgr.var(t);
    let not_qt = state.mgr.not(qt);
    // H:      new = F|₀ + F|₁ on qₜ=0 rows, F|₀ − F|₁ on qₜ=1 rows.
    // Ry(π/2): new = F|₀ − F|₁ on qₜ=0 rows, F|₀ + F|₁ on qₜ=1 rows.
    let negate_cond = match kind {
        HadamardKind::H => qt,
        HadamardKind::RyPi2 => not_qt,
    };
    let r = state.r;
    let inputs = flat_slices(state);
    // Stage 1: per-slice cofactor pair + sign fold — 4·r independent tasks.
    let pairs = state.par_map(inputs.len(), |mgr, i| {
        let f = inputs[i];
        let f0 = arith::cofactor_replicated(mgr, f, t, false);
        let f1 = arith::cofactor_replicated(mgr, f, t, true);
        (f0, mgr.xor(f1, negate_cond))
    });
    // Stage 2: the ripple-carry addition — one carry chain per family.
    let out = state.par_map(4, |mgr, family| {
        let chunk = &pairs[family * r..(family + 1) * r];
        let f0: Vec<NodeId> = chunk.iter().map(|pair| pair.0).collect();
        let second: Vec<NodeId> = chunk.iter().map(|pair| pair.1).collect();
        arith::add_sliced(mgr, &f0, &second, negate_cond)
    });
    state.slices = out.try_into().expect("four families");
    state.k += 1;
    state.shrink();
}

/// `Rx(π/2)`: the new value is `old − i·old_swapped` on qₜ=0 rows and
/// `−i·old_swapped + old` on qₜ=1 rows — uniformly `old + (−i)·swap(old)`.
fn apply_rx_pi2(state: &mut BitSliceState, t: usize) {
    state.extend(1);
    let swapped = swap_all_families(state, t);
    // (−i)·(a, b, c, d) = (−c, −d, a, b): subtract swap(c)/swap(d) from a/b and
    // add swap(a)/swap(b) to c/d.
    let a_old = state.slices[Family::A as usize].clone();
    let b_old = state.slices[Family::B as usize].clone();
    let c_old = state.slices[Family::C as usize].clone();
    let d_old = state.slices[Family::D as usize].clone();
    // Whole-vector negation is 2·r complement-bit flips — the kernel's
    // complement edges make these O(1), no traversal or allocation.
    let not_sc: Vec<NodeId> = swapped[Family::C as usize]
        .iter()
        .map(|&f| state.mgr.not(f))
        .collect();
    let not_sd: Vec<NodeId> = swapped[Family::D as usize]
        .iter()
        .map(|&f| state.mgr.not(f))
        .collect();
    // One ripple-carry chain per family.
    let plan: [(&Vec<NodeId>, &Vec<NodeId>, NodeId); 4] = [
        (&a_old, &not_sc, NodeId::TRUE),
        (&b_old, &not_sd, NodeId::TRUE),
        (&c_old, &swapped[Family::A as usize], NodeId::FALSE),
        (&d_old, &swapped[Family::B as usize], NodeId::FALSE),
    ];
    let out = state.par_map(4, |mgr, family| {
        let (x, y, carry_in) = plan[family];
        arith::add_sliced(mgr, x, y, carry_in)
    });
    state.slices = out.try_into().expect("four families");
    state.k += 1;
    state.shrink();
}

#[cfg(test)]
mod tests {
    use super::*;
    use sliq_math::Algebraic;

    fn amp(state: &mut BitSliceState, bits: &[bool]) -> Algebraic {
        state.amplitude(bits)
    }

    #[test]
    fn x_flips_the_target_bit() {
        let mut state = BitSliceState::new(2);
        apply(&mut state, &Gate::X(1));
        assert_eq!(amp(&mut state, &[false, true]), Algebraic::one());
        assert_eq!(amp(&mut state, &[false, false]), Algebraic::zero());
    }

    #[test]
    fn hadamard_creates_an_equal_superposition() {
        let mut state = BitSliceState::new(1);
        apply(&mut state, &Gate::H(0));
        let expected = Algebraic::one().div_sqrt2();
        assert!(amp(&mut state, &[false]).value_eq(&expected));
        assert!(amp(&mut state, &[true]).value_eq(&expected));
        assert_eq!(state.k(), 1);
        // H·H = identity, exactly.
        apply(&mut state, &Gate::H(0));
        let one_scaled = Algebraic::one().with_k(state.k() as i32);
        assert_eq!(amp(&mut state, &[false]), one_scaled);
        assert!(amp(&mut state, &[true]).is_zero());
    }

    #[test]
    fn hadamard_on_one_gives_a_minus_sign() {
        let mut state = BitSliceState::with_initial_bits(&[true]);
        apply(&mut state, &Gate::H(0));
        let plus = Algebraic::one().div_sqrt2();
        assert!(amp(&mut state, &[false]).value_eq(&plus));
        assert!(amp(&mut state, &[true]).value_eq(&(-plus)));
    }

    #[test]
    fn z_and_s_and_t_phases() {
        // On |1⟩: Z → −1, S → i, T → ω.
        let mut z_state = BitSliceState::with_initial_bits(&[true]);
        apply(&mut z_state, &Gate::Z(0));
        assert_eq!(amp(&mut z_state, &[true]), -Algebraic::one());

        let mut s_state = BitSliceState::with_initial_bits(&[true]);
        apply(&mut s_state, &Gate::S(0));
        assert_eq!(amp(&mut s_state, &[true]), Algebraic::i());

        let mut t_state = BitSliceState::with_initial_bits(&[true]);
        apply(&mut t_state, &Gate::T(0));
        assert_eq!(amp(&mut t_state, &[true]), Algebraic::omega());

        // And on |0⟩ they all act trivially.
        let mut id_state = BitSliceState::new(1);
        apply(&mut id_state, &Gate::Z(0));
        apply(&mut id_state, &Gate::S(0));
        apply(&mut id_state, &Gate::T(0));
        assert_eq!(amp(&mut id_state, &[false]), Algebraic::one());
    }

    #[test]
    fn y_on_basis_states() {
        // Y|0⟩ = i|1⟩, Y|1⟩ = −i|0⟩.
        let mut state0 = BitSliceState::new(1);
        apply(&mut state0, &Gate::Y(0));
        assert!(amp(&mut state0, &[false]).is_zero());
        assert_eq!(amp(&mut state0, &[true]), Algebraic::i());

        let mut state1 = BitSliceState::with_initial_bits(&[true]);
        apply(&mut state1, &Gate::Y(0));
        assert_eq!(amp(&mut state1, &[false]), -Algebraic::i());
        assert!(amp(&mut state1, &[true]).is_zero());
    }

    #[test]
    fn daggers_undo_their_gates_exactly() {
        let mut state = BitSliceState::new(1);
        apply(&mut state, &Gate::H(0));
        apply(&mut state, &Gate::T(0));
        apply(&mut state, &Gate::Tdg(0));
        apply(&mut state, &Gate::S(0));
        apply(&mut state, &Gate::Sdg(0));
        apply(&mut state, &Gate::H(0));
        // Back to |0⟩ up to the 1/√2² factor from the two Hadamards.
        assert!(amp(&mut state, &[true]).is_zero());
        assert!(amp(&mut state, &[false]).value_eq(&Algebraic::one()));
    }

    #[test]
    fn t_to_the_eighth_is_identity() {
        let mut state = BitSliceState::with_initial_bits(&[true]);
        for _ in 0..8 {
            apply(&mut state, &Gate::T(0));
        }
        assert_eq!(amp(&mut state, &[true]), Algebraic::one());
    }

    #[test]
    fn cnot_and_toffoli_permute_basis_states() {
        let mut state = BitSliceState::with_initial_bits(&[true, false, false]);
        apply(
            &mut state,
            &Gate::Cnot {
                control: 0,
                target: 1,
            },
        );
        assert_eq!(amp(&mut state, &[true, true, false]), Algebraic::one());
        apply(
            &mut state,
            &Gate::Toffoli {
                controls: vec![0, 1],
                target: 2,
            },
        );
        assert_eq!(amp(&mut state, &[true, true, true]), Algebraic::one());
        // Control below target.
        apply(
            &mut state,
            &Gate::Cnot {
                control: 2,
                target: 0,
            },
        );
        assert_eq!(amp(&mut state, &[false, true, true]), Algebraic::one());
    }

    #[test]
    fn fredkin_swaps_under_control() {
        let mut state = BitSliceState::with_initial_bits(&[true, true, false]);
        apply(
            &mut state,
            &Gate::Fredkin {
                controls: vec![0],
                target1: 1,
                target2: 2,
            },
        );
        assert_eq!(amp(&mut state, &[true, false, true]), Algebraic::one());
        // Without its control satisfied nothing moves.
        let mut idle = BitSliceState::with_initial_bits(&[false, true, false]);
        apply(
            &mut idle,
            &Gate::Fredkin {
                controls: vec![0],
                target1: 1,
                target2: 2,
            },
        );
        assert_eq!(amp(&mut idle, &[false, true, false]), Algebraic::one());
    }

    #[test]
    fn bell_state_amplitudes_are_exact() {
        let mut state = BitSliceState::new(2);
        apply(&mut state, &Gate::H(0));
        apply(
            &mut state,
            &Gate::Cnot {
                control: 0,
                target: 1,
            },
        );
        let h = Algebraic::one().div_sqrt2();
        assert!(amp(&mut state, &[false, false]).value_eq(&h));
        assert!(amp(&mut state, &[true, true]).value_eq(&h));
        assert!(amp(&mut state, &[true, false]).is_zero());
        assert!(amp(&mut state, &[false, true]).is_zero());
    }

    #[test]
    fn width_grows_and_shrinks_with_hadamard_ladders() {
        let mut state = BitSliceState::new(1);
        let start = state.width();
        // H then X then H then X … amplitudes stay within ±2, so the width
        // must stay small thanks to shrink().
        for _ in 0..20 {
            apply(&mut state, &Gate::H(0));
            apply(&mut state, &Gate::X(0));
        }
        assert!(state.width() <= start + 21);
        assert!(state.width() >= start);
    }

    #[test]
    fn rx_and_ry_match_their_matrices_on_basis_states() {
        // Rx(π/2)|0⟩ = (|0⟩ − i|1⟩)/√2.
        let mut state = BitSliceState::new(1);
        apply(&mut state, &Gate::RxPi2(0));
        let inv_sqrt2 = Algebraic::one().div_sqrt2();
        assert!(amp(&mut state, &[false]).value_eq(&inv_sqrt2));
        assert!(amp(&mut state, &[true]).value_eq(&(-Algebraic::i()).div_sqrt2()));
        assert_eq!(state.k(), 1);

        // Ry(π/2)|0⟩ = (|0⟩ + |1⟩)/√2, Ry(π/2)|1⟩ = (−|0⟩ + |1⟩)/√2.
        let mut state0 = BitSliceState::new(1);
        apply(&mut state0, &Gate::RyPi2(0));
        assert!(amp(&mut state0, &[false]).value_eq(&inv_sqrt2));
        assert!(amp(&mut state0, &[true]).value_eq(&inv_sqrt2));
        let mut state1 = BitSliceState::with_initial_bits(&[true]);
        apply(&mut state1, &Gate::RyPi2(0));
        assert!(amp(&mut state1, &[false]).value_eq(&(-inv_sqrt2)));
        assert!(amp(&mut state1, &[true]).value_eq(&inv_sqrt2));
    }

    #[test]
    fn cz_adds_a_phase_only_on_the_11_row() {
        let mut state = BitSliceState::new(2);
        apply(&mut state, &Gate::H(0));
        apply(&mut state, &Gate::H(1));
        apply(
            &mut state,
            &Gate::Cz {
                control: 0,
                target: 1,
            },
        );
        let quarter = Algebraic::one().div_sqrt2().div_sqrt2();
        assert!(amp(&mut state, &[false, false]).value_eq(&quarter));
        assert!(amp(&mut state, &[true, false]).value_eq(&quarter));
        assert!(amp(&mut state, &[false, true]).value_eq(&quarter));
        assert!(amp(&mut state, &[true, true]).value_eq(&(-quarter)));
    }
}
