//! The bit-sliced quantum state representation (Section III-B of the paper).
//!
//! A state vector over `n` qubits with algebraic amplitudes
//! `αᵢ = (aᵢ·ω³ + bᵢ·ω² + cᵢ·ω + dᵢ)/√2ᵏ` is stored as
//!
//! * a shared scalar `k`,
//! * four integer vectors `a⃗, b⃗, c⃗, d⃗` of length `2ⁿ`, each of which is
//!   **bit-sliced**: bit `j` of the whole vector is a Boolean function of the
//!   `n` qubit variables, represented as one BDD.
//!
//! The integers use two's complement with a dynamically growing width `r`, so
//! the full state occupies `4·r` BDDs over `n` variables plus one machine
//! integer — never an explicit `2ⁿ`-element array.

use sliq_bdd::{pool, KernelMode, Manager, NodeId, ReorderStats, RootSlot, WorkerPool};
use sliq_math::Algebraic;
use std::sync::Arc;

/// Index of one of the four coefficient vector families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Coefficients of ω³.
    A = 0,
    /// Coefficients of ω².
    B = 1,
    /// Coefficients of ω.
    C = 2,
    /// Constant coefficients.
    D = 3,
}

/// All four families, in storage order.
pub const FAMILIES: [Family; 4] = [Family::A, Family::B, Family::C, Family::D];

/// The bit-sliced BDD representation of an `n`-qubit state vector.
#[derive(Debug, Clone)]
pub struct BitSliceState {
    /// The BDD manager; qubit `q` is BDD variable `q`.
    pub(crate) mgr: Manager,
    pub(crate) num_qubits: usize,
    /// Current two's-complement bit width of the integer coefficients.
    pub(crate) r: usize,
    /// Global `1/√2ᵏ` scaling exponent.
    pub(crate) k: i64,
    /// `slices[f][j]` is the BDD of bit `j` (LSB first) of family `f`.
    pub(crate) slices: [Vec<NodeId>; 4],
    /// Registry slots protecting the live slice roots inside the manager
    /// (one block of `4·r` slots, kept in sync by
    /// [`BitSliceState::sync_registered_roots`]).  The registration is what
    /// lets the manager garbage-collect and *reorder* autonomously: the
    /// slice handles survive because the registered nodes keep their ids
    /// and functions across level swaps.
    root_slots: Vec<RootSlot>,
    /// Floating-point normalisation factor accumulated by measurements
    /// (`s` in Eq. 13 of the paper); exactly 1.0 until the first collapse.
    pub(crate) norm_factor: f64,
    /// Threads used for the per-gate slice fan-out (1 = serial).  The BDD
    /// kernel's apply operations take `&Manager`, so the `4·r` independent
    /// slice updates of a gate can run concurrently; GC and reordering stay
    /// stop-the-world at gate boundaries (`&mut Manager`).
    threads: usize,
    /// Shared worker pool backing the fan-out when `threads > 1`.
    pool: Option<Arc<WorkerPool>>,
}

/// The minimum representable bit width (value +1 needs a sign bit).
pub(crate) const MIN_WIDTH: usize = 2;

/// The width-normalisation shared by [`BitSliceState::shrink`] and the
/// sampling views ([`crate::ConditionedView`]): drop redundant sign slices,
/// then factor common powers of two into `k`.  Kept as one function so the
/// non-mutating sampling descent normalises *exactly* like the state
/// mutations do (bit-identical widths and exponents ⇒ bit-identical
/// probabilities).
pub(crate) fn shrink_slices(slices: &mut [Vec<NodeId>; 4], r: &mut usize, k: &mut i64) {
    while *r > MIN_WIDTH && slices.iter().all(|s| s[*r - 1] == s[*r - 2]) {
        for s in slices.iter_mut() {
            s.pop();
        }
        *r -= 1;
    }
    // Factor out common powers of two into k.
    while *k >= 2 && slices.iter().all(|s| s[0].is_false()) {
        let all_zero = slices.iter().all(|s| s.iter().all(|f| f.is_false()));
        if all_zero {
            // The zero vector would reduce forever; it only occurs for an
            // unnormalised state, so leave it alone.
            break;
        }
        for s in slices.iter_mut() {
            s.remove(0);
            let msb = *s.last().expect("width at least MIN_WIDTH - 1");
            if s.len() < MIN_WIDTH {
                s.push(msb);
            }
        }
        if *r > MIN_WIDTH {
            *r -= 1;
        }
        *k -= 2;
    }
}

/// A checkpoint of a [`BitSliceState`] taken by [`BitSliceState::snapshot`].
///
/// The snapshot does not copy any BDD nodes — it records the `4·r` slice
/// roots (plus the scalars `r`, `k` and the measurement factor `s`) and
/// registers them with the manager's root registry, so the captured nodes
/// survive garbage collection and variable reordering for as long as the
/// snapshot is alive.  Restoring is O(r); taking a snapshot is O(r) root
/// registrations.
///
/// Release a snapshot with [`BitSliceState::release_snapshot`] when it is no
/// longer needed; a dropped-but-unreleased snapshot keeps its nodes
/// registered (and therefore live) until the manager itself is dropped.
#[derive(Debug)]
pub struct StateSnapshot {
    r: usize,
    k: i64,
    norm_factor: f64,
    /// One registry slot per slice root, in `all_roots` order (family-major).
    slots: Vec<RootSlot>,
}

impl StateSnapshot {
    /// The coefficient bit width at the time of the snapshot.
    pub fn width(&self) -> usize {
        self.r
    }
}

impl BitSliceState {
    /// Creates the state `|0…0⟩` over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Self::with_initial_bits(&vec![false; num_qubits])
    }

    /// Creates the basis state `|b₀…b_{n−1}⟩` (Eq. 6 of the paper): every
    /// slice BDD is constant false except `F_{d,0}`, which is the minterm of
    /// the initial bits.
    pub fn with_initial_bits(bits: &[bool]) -> Self {
        let num_qubits = bits.len();
        let mut mgr = Manager::new(num_qubits);
        let minterm = mgr.cube(
            &bits
                .iter()
                .enumerate()
                .map(|(q, &b)| (q, b))
                .collect::<Vec<_>>(),
        );
        let zero = NodeId::FALSE;
        let mut slices = [
            vec![zero; MIN_WIDTH],
            vec![zero; MIN_WIDTH],
            vec![zero; MIN_WIDTH],
            vec![zero; MIN_WIDTH],
        ];
        slices[Family::D as usize][0] = minterm;
        // Pin any later auxiliary variables (the monolithic measurement
        // encoding) below the qubit block: sifting must preserve the
        // paper's "qubits above encoding variables" order requirement.
        mgr.set_reorder_window(num_qubits);
        let threads = pool::default_threads();
        // A 1-thread configuration owns the manager outright, so the kernel
        // can drop its cross-thread coordination (see `KernelMode`); the
        // reordering relink batches scale with the same thread count.
        mgr.set_reorder_threads(threads);
        if threads == 1 {
            mgr.set_kernel_mode(KernelMode::Serial);
        }
        let mut state = Self {
            mgr,
            num_qubits,
            r: MIN_WIDTH,
            k: 0,
            slices,
            root_slots: Vec::new(),
            norm_factor: 1.0,
            threads,
            pool: if threads > 1 {
                Some(pool::global(threads))
            } else {
                None
            },
        };
        state.sync_registered_roots();
        state
    }

    /// Sets the number of threads the per-gate slice fan-out uses (clamped
    /// to at least 1; 1 disables the worker pool entirely).  The default is
    /// the `SLIQ_THREADS` environment variable, falling back to the
    /// machine's available parallelism.  Thread count never changes any
    /// result — amplitudes, probabilities and samples are exact either way —
    /// only how the independent slice updates are scheduled.
    pub fn set_threads(&mut self, threads: usize) {
        let threads = threads.max(1);
        self.threads = threads;
        self.pool = if threads > 1 {
            Some(pool::global(threads))
        } else {
            None
        };
        self.mgr.set_reorder_threads(threads);
        self.mgr.set_kernel_mode(if threads == 1 {
            KernelMode::Serial
        } else {
            KernelMode::Shared
        });
    }

    /// The configured fan-out width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Overrides the kernel flavour selected by [`BitSliceState::set_threads`]
    /// (1 thread → serial fast paths, otherwise shared).  Forcing
    /// [`KernelMode::Shared`] at 1 thread is always sound and is how the
    /// benchmarks measure the serial fast paths' overhead; forcing
    /// [`KernelMode::Serial`] above 1 thread is **unsound** and therefore
    /// refused.
    pub fn set_kernel_mode(&mut self, mode: KernelMode) {
        if mode == KernelMode::Serial && self.threads > 1 {
            return;
        }
        self.mgr.set_kernel_mode(mode);
    }

    /// The kernel flavour the manager currently runs.
    pub fn kernel_mode(&self) -> KernelMode {
        self.mgr.kernel_mode()
    }

    /// Pins an arbitrary BDD function in the manager's root registry so it
    /// survives garbage collection and reordering (used by the sampling
    /// cache to keep its conditioned views alive between `sample` calls).
    pub fn pin_root(&mut self, f: NodeId) -> RootSlot {
        self.mgr.register_root(f)
    }

    /// Reads a pinned root back (the id is stable across reordering; the
    /// registry is what guarantees the node stayed live).
    pub fn pinned_root(&self, slot: RootSlot) -> NodeId {
        self.mgr.root(slot)
    }

    /// Releases a root pinned with [`BitSliceState::pin_root`].
    pub fn unpin_root(&mut self, slot: RootSlot) {
        let _ = self.mgr.release_root(slot);
    }

    /// Maps `f(manager, index)` over `0..tasks`, fanning out across the
    /// worker pool when one is configured.  Every task result lands at its
    /// own index, so the output is deterministic regardless of scheduling —
    /// and hash consing makes the *BDD contents* canonical regardless of
    /// which thread created a node first.
    pub(crate) fn par_map<T: Send + Sync>(
        &self,
        tasks: usize,
        f: impl Fn(&Manager, usize) -> T + Sync,
    ) -> Vec<T> {
        match &self.pool {
            Some(pool) if tasks > 1 => pool.map(tasks, |index| f(&self.mgr, index)),
            _ => (0..tasks).map(|index| f(&self.mgr, index)).collect(),
        }
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The current integer bit width `r`.
    pub fn width(&self) -> usize {
        self.r
    }

    /// The global `1/√2ᵏ` exponent.
    pub fn k(&self) -> i64 {
        self.k
    }

    /// The measurement normalisation factor `s` (1.0 before any collapse).
    pub fn normalization_factor(&self) -> f64 {
        self.norm_factor
    }

    /// The slice BDDs of one family (bit `j` of the coefficient vector is
    /// entry `j`, LSB first).
    pub fn family_slices(&self, family: Family) -> &[NodeId] {
        &self.slices[family as usize]
    }

    /// Read access to the BDD manager (e.g. for node statistics).
    pub fn manager(&self) -> &Manager {
        &self.mgr
    }

    /// Installs resource budgets on the kernel: a live-node ceiling and a
    /// byte ceiling over arena + subtables + op caches.  Both are enforced
    /// inside the kernel's sifting passes (a reorder parks early rather than
    /// blowing the budget) and polled by the simulator at gate boundaries;
    /// `None` lifts the respective limit.
    pub fn set_memory_limits(&mut self, max_nodes: Option<usize>, max_bytes: Option<usize>) {
        self.mgr.set_node_limit(max_nodes);
        self.mgr.set_max_bytes(max_bytes);
    }

    /// All `4·r` slice roots (used as the GC root set and for node counts).
    pub fn all_roots(&self) -> Vec<NodeId> {
        self.slices.iter().flatten().copied().collect()
    }

    /// The number of distinct live BDD nodes reachable from the state.
    pub fn node_count(&self) -> usize {
        self.mgr.node_count_many(&self.all_roots())
    }

    /// `(complemented_high_edges, reachable_nodes)` over the live state
    /// BDDs — the sharing the kernel's complement edges buy (a slice and
    /// its negation are one subgraph; see
    /// [`sliq_bdd::Manager::complement_edge_count`]).
    pub fn complement_edge_count(&self) -> (usize, usize) {
        self.mgr.complement_edge_count(&self.all_roots())
    }

    /// Re-registers the current `4·r` slice roots with the manager's root
    /// registry (growing or shrinking the slot block as the width changed).
    /// Called after every state mutation, so the manager always knows the
    /// live root set — for garbage collection and for reordering.
    pub(crate) fn sync_registered_roots(&mut self) {
        let roots = self.all_roots();
        while self.root_slots.len() < roots.len() {
            let slot = self.mgr.register_root(NodeId::FALSE);
            self.root_slots.push(slot);
        }
        while self.root_slots.len() > roots.len() {
            let slot = self.root_slots.pop().expect("length checked");
            self.mgr.release_root(slot);
        }
        for (&slot, f) in self.root_slots.iter().zip(roots) {
            self.mgr.set_root(slot, f);
        }
    }

    /// Runs a garbage collection if the manager considers it worthwhile.
    /// Trusts the root registry (every mutation path ends with
    /// [`BitSliceState::sync_registered_roots`]), so the no-op case costs
    /// one counter comparison.
    pub fn maybe_collect_garbage(&mut self) {
        if self.mgr.should_collect() {
            self.mgr.collect_garbage_registered();
        }
    }

    /// Forces a garbage collection (rooted at the registered slice roots).
    pub fn collect_garbage(&mut self) -> usize {
        self.sync_registered_roots();
        self.mgr.collect_garbage_registered()
    }

    // ------------------------------------------------------------------ //
    // Snapshots (non-destructive measurement and batched sampling)
    // ------------------------------------------------------------------ //

    /// Captures the current state as a [`StateSnapshot`].
    ///
    /// The snapshot pins its `4·r` slice roots in the manager's root
    /// registry, so later mutations (collapses, gates, GC, reordering) can
    /// never invalidate it; [`BitSliceState::restore`] rolls the state back
    /// in O(r).
    pub fn snapshot(&mut self) -> StateSnapshot {
        let roots = self.all_roots();
        let slots = roots
            .into_iter()
            .map(|f| self.mgr.register_root(f))
            .collect();
        StateSnapshot {
            r: self.r,
            k: self.k,
            norm_factor: self.norm_factor,
            slots,
        }
    }

    /// Restores the state captured by `snapshot` (which stays valid and can
    /// be restored again).  The restored slice roots may have been relabelled
    /// by reordering in the meantime; the registry slots track that, so the
    /// snapshot is re-read through the registry rather than from the raw ids.
    pub fn restore(&mut self, snapshot: &StateSnapshot) {
        for (family, chunk) in snapshot.slots.chunks(snapshot.r).enumerate() {
            self.slices[family].clear();
            self.slices[family].extend(chunk.iter().map(|&slot| self.mgr.root(slot)));
        }
        self.r = snapshot.r;
        self.k = snapshot.k;
        self.norm_factor = snapshot.norm_factor;
        self.sync_registered_roots();
    }

    /// Releases a snapshot, unpinning its roots from the manager registry.
    pub fn release_snapshot(&mut self, snapshot: StateSnapshot) {
        for slot in snapshot.slots {
            self.mgr.release_root(slot);
        }
    }

    // ------------------------------------------------------------------ //
    // Variable reordering
    // ------------------------------------------------------------------ //

    /// Enables or disables automatic variable reordering: when enabled, the
    /// simulator sifts the qubit order whenever the live BDD grows past the
    /// manager's trigger threshold.  All slice handles stay valid across a
    /// reordering (they are registered roots).
    pub fn set_auto_reorder(&mut self, enabled: bool) {
        self.mgr.set_auto_reorder(enabled);
    }

    /// Sets the allocated-node trigger for automatic reordering.
    pub fn set_reorder_threshold(&mut self, threshold: usize) {
        self.mgr.set_reorder_threshold(threshold);
    }

    /// Enables converging sifting (repeat passes until < 1% gain).
    pub fn set_converging_sifting(&mut self, converge: bool) {
        self.mgr.set_converging_sifting(converge);
    }

    /// Sifts the qubit variable order now, returning the run's statistics.
    pub fn reorder(&mut self) -> ReorderStats {
        self.sync_registered_roots();
        self.mgr.reorder()
    }

    /// Lets the manager reorder if its automatic trigger fires (a no-op
    /// unless [`BitSliceState::set_auto_reorder`] enabled it).  Trusts the
    /// root registry like [`BitSliceState::maybe_collect_garbage`], so the
    /// per-gate fast path is two comparisons.  Returns `true` if a
    /// reordering ran.
    pub fn maybe_reorder(&mut self) -> bool {
        self.mgr.maybe_reorder()
    }

    // ------------------------------------------------------------------ //
    // Width management (the paper's dynamic `r` growth)
    // ------------------------------------------------------------------ //

    /// Sign-extends every coefficient vector by `extra` bits.  Adding two
    /// sign-extended `r+1`-bit numbers can never overflow, which is how the
    /// implementation realises the paper's "allocate extra BDDs on overflow"
    /// without ever producing a wrapped result.
    pub(crate) fn extend(&mut self, extra: usize) {
        for slices in self.slices.iter_mut() {
            let msb = *slices.last().expect("width is at least MIN_WIDTH");
            for _ in 0..extra {
                slices.push(msb);
            }
        }
        self.r += extra;
    }

    /// Drops redundant sign slices: while the two topmost slices of *every*
    /// family are identical BDDs, the top one carries no information.
    /// Additionally factors out common powers of two: when the least
    /// significant slice of every family is constant false, all coefficients
    /// are even and can be divided by 2 while lowering `k` by 2 (since
    /// `2 = √2²`) — the same normalisation the SliQSim tool performs to keep
    /// the bit width proportional to the *significant* precision rather than
    /// to the circuit depth.
    pub(crate) fn shrink(&mut self) {
        shrink_slices(&mut self.slices, &mut self.r, &mut self.k);
    }

    // ------------------------------------------------------------------ //
    // Exact amplitude extraction
    // ------------------------------------------------------------------ //

    /// The exact algebraic amplitude of the basis state `bits`, ignoring the
    /// floating-point measurement factor `s` (which is 1 before any
    /// measurement); multiply by [`BitSliceState::normalization_factor`] for
    /// the post-measurement value.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != num_qubits()` or if the coefficient width
    /// exceeds 63 bits (far beyond anything a circuit of practical depth
    /// produces, since each Hadamard adds at most one bit).
    pub fn amplitude(&mut self, bits: &[bool]) -> Algebraic {
        assert_eq!(bits.len(), self.num_qubits, "wrong number of qubit values");
        assert!(
            self.r <= 63,
            "amplitude extraction supports widths up to 63 bits"
        );
        let literals: Vec<(usize, bool)> = bits.iter().enumerate().map(|(q, &b)| (q, b)).collect();
        let mut coeffs = [0i64; 4];
        for (fi, family) in self.slices.iter().enumerate() {
            let mut value: i64 = 0;
            for (j, &slice) in family.iter().enumerate() {
                let bit = {
                    let restricted = self.mgr.cofactor_cube(slice, &literals);
                    debug_assert!(restricted.is_terminal());
                    restricted.is_true()
                };
                if bit {
                    if j == self.r - 1 {
                        value -= 1i64 << j; // sign bit
                    } else {
                        value += 1i64 << j;
                    }
                }
            }
            coeffs[fi] = value;
        }
        Algebraic::new(
            coeffs[Family::A as usize],
            coeffs[Family::B as usize],
            coeffs[Family::C as usize],
            coeffs[Family::D as usize],
            self.k as i32,
        )
    }

    /// The amplitude of the basis state `bits` as a floating-point complex
    /// number.  Unlike [`BitSliceState::amplitude`] this supports arbitrary
    /// coefficient widths (the conversion to `f64` is the only lossy step),
    /// which matters for very deep circuits whose exact integer coefficients
    /// exceed 63 bits.
    pub fn amplitude_complex(&mut self, bits: &[bool]) -> sliq_math::Complex {
        assert_eq!(bits.len(), self.num_qubits, "wrong number of qubit values");
        let literals: Vec<(usize, bool)> = bits.iter().enumerate().map(|(q, &b)| (q, b)).collect();
        let mut coeffs = [0.0f64; 4];
        for (fi, family) in self.slices.iter().enumerate() {
            let mut value = 0.0f64;
            for (j, &slice) in family.iter().enumerate() {
                let restricted = self.mgr.cofactor_cube(slice, &literals);
                debug_assert!(restricted.is_terminal());
                if restricted.is_true() {
                    let weight = 2f64.powi(j as i32);
                    if j == self.r - 1 {
                        value -= weight;
                    } else {
                        value += weight;
                    }
                }
            }
            coeffs[fi] = value;
        }
        let (a, b, c, d) = (coeffs[0], coeffs[1], coeffs[2], coeffs[3]);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let scale = 2f64.powf(-(self.k as f64) / 2.0) * self.norm_factor;
        sliq_math::Complex::new(((c - a) * s + d) * scale, ((a + c) * s + b) * scale)
    }

    /// The full state vector as exact algebraic amplitudes (index `i` has
    /// qubit `q` equal to bit `q` of `i`).  Only sensible for small `n`;
    /// intended for tests and examples.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits() > 20`.
    pub fn to_algebraic_vector(&mut self) -> Vec<Algebraic> {
        assert!(
            self.num_qubits <= 20,
            "explicit expansion limited to 20 qubits"
        );
        let n = self.num_qubits;
        (0..(1usize << n))
            .map(|i| {
                let bits: Vec<bool> = (0..n).map(|q| i >> q & 1 == 1).collect();
                self.amplitude(&bits)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_has_unit_amplitude_on_the_basis_state() {
        let mut state = BitSliceState::with_initial_bits(&[true, false, true]);
        assert_eq!(state.amplitude(&[true, false, true]), Algebraic::one());
        assert_eq!(state.amplitude(&[false, false, true]), Algebraic::zero());
        assert_eq!(state.k(), 0);
        assert_eq!(state.width(), MIN_WIDTH);
        assert_eq!(state.normalization_factor(), 1.0);
    }

    #[test]
    fn all_zero_state() {
        let mut state = BitSliceState::new(4);
        assert_eq!(state.amplitude(&[false; 4]), Algebraic::one());
        let vector = {
            let mut small = BitSliceState::new(2);
            small.to_algebraic_vector()
        };
        assert_eq!(vector[0], Algebraic::one());
        assert!(vector[1..].iter().all(Algebraic::is_zero));
    }

    #[test]
    fn extend_and_shrink_are_inverses_on_a_fresh_state() {
        let mut state = BitSliceState::new(2);
        let before = state.amplitude(&[false, false]);
        state.extend(3);
        assert_eq!(state.width(), MIN_WIDTH + 3);
        // Sign extension must not change any amplitude.
        assert_eq!(state.amplitude(&[false, false]), before);
        state.shrink();
        assert_eq!(state.width(), MIN_WIDTH);
        assert_eq!(state.amplitude(&[false, false]), before);
    }

    #[test]
    fn node_count_and_gc() {
        let mut state = BitSliceState::new(6);
        let count = state.node_count();
        assert!(count >= 1, "the initial minterm needs at least one node");
        let freed = state.collect_garbage();
        assert_eq!(state.node_count(), count, "GC must not drop live slices");
        let _ = freed;
    }

    #[test]
    fn family_accessors() {
        let state = BitSliceState::new(3);
        assert_eq!(state.family_slices(Family::D).len(), state.width());
        assert!(state.family_slices(Family::A)[0].is_false());
        assert_eq!(state.all_roots().len(), 4 * state.width());
    }
}
