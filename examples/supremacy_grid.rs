//! Google-style supremacy circuits on a rectangular lattice — the Table VI
//! experiment, scaled down to laptop size.
//!
//! These circuits are designed to entangle qubits as fast as possible, which
//! makes them the hardest family for every decision-diagram simulator; the
//! paper reports both DDSIM and SliQSim giving out on the larger grids.  The
//! example runs a small lattice on the bit-sliced and QMDD backends and
//! compares their amplitudes against the dense oracle.
//!
//! Run with:
//! ```text
//! cargo run --release --example supremacy_grid -- [rows] [cols] [depth]
//! ```

use sliqsim::circuit::Simulator;
use sliqsim::prelude::*;
use sliqsim::workloads::supremacy::{supremacy_circuit, Lattice};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let cols: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let depth: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);
    let lattice = Lattice::new(rows, cols);
    let circuit = supremacy_circuit(lattice, depth, 2024);
    let n = circuit.num_qubits();
    println!(
        "supremacy circuit: {rows}×{cols} lattice ({n} qubits), depth {depth}, {} gates",
        circuit.len()
    );

    let start = Instant::now();
    let mut bitslice = BitSliceSimulator::new(n);
    bitslice.run(&circuit)?;
    println!(
        "bit-sliced BDD : {:.3} s, {} nodes, width r = {}, exactly normalised = {}",
        start.elapsed().as_secs_f64(),
        bitslice.node_count(),
        bitslice.width(),
        bitslice.is_exactly_normalized()
    );

    let start = Instant::now();
    let mut qmdd = QmddSimulator::new(n);
    qmdd.run(&circuit)?;
    println!(
        "QMDD baseline  : {:.3} s, {} nodes, Σp = {:.12}",
        start.elapsed().as_secs_f64(),
        qmdd.node_count(),
        qmdd.total_probability()
    );

    if n <= 24 {
        let start = Instant::now();
        let mut dense = DenseSimulator::new(n);
        dense.run(&circuit)?;
        println!("dense oracle   : {:.3} s", start.elapsed().as_secs_f64());
        // Cross-check a handful of amplitudes across all three backends.
        let mut max_err: f64 = 0.0;
        for i in 0..16usize {
            let bits: Vec<bool> = (0..n)
                .map(|q| (i.wrapping_mul(2654435761) >> (q % 30)) & 1 == 1)
                .collect();
            let exact = bitslice.amplitude(&bits).to_complex();
            let d = dense.amplitude(&bits);
            let q = qmdd.amplitude(&bits);
            max_err = max_err.max((exact - d).norm()).max((q - d).norm());
        }
        println!("max amplitude deviation vs dense over 16 spot checks: {max_err:.3e}");
    } else {
        println!("dense oracle   : skipped ({n} qubits exceeds the array-based limit)");
    }
    Ok(())
}
