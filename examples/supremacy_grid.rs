//! Google-style supremacy circuits on a rectangular lattice — the Table VI
//! experiment, scaled down to laptop size.
//!
//! These circuits are designed to entangle qubits as fast as possible, which
//! makes them the hardest family for every decision-diagram simulator; the
//! paper reports both DDSIM and SliQSim giving out on the larger grids.  The
//! example runs a small lattice through one `Session` per backend, compares
//! amplitudes against the dense oracle, and cross-checks the sampling
//! histograms of the exact and dense backends.
//!
//! Run with:
//! ```text
//! cargo run --release --example supremacy_grid -- [rows] [cols] [depth]
//! ```

use sliqsim::prelude::*;
use sliqsim::workloads::supremacy::{supremacy_circuit, Lattice};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let cols: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let depth: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);
    let lattice = Lattice::new(rows, cols);
    let circuit = supremacy_circuit(lattice, depth, 2024);
    let n = circuit.num_qubits();
    println!(
        "supremacy circuit: {rows}×{cols} lattice ({n} qubits), depth {depth}, {} gates",
        circuit.len()
    );

    let mut bitslice =
        Session::for_circuit(&circuit, SessionConfig::with_backend(BackendKind::BitSlice))?;
    let run = bitslice.run(&circuit)?;
    println!(
        "bit-sliced BDD : {:.3} s, {} nodes ({:.2} MiB peak), |Σp − 1| = {:.1e}",
        run.elapsed.as_secs_f64(),
        run.stats.live_nodes.unwrap_or(0),
        run.stats.memory_mib,
        run.probability_error(),
    );

    let mut qmdd = Session::for_circuit(&circuit, SessionConfig::with_backend(BackendKind::Qmdd))?;
    let run = qmdd.run(&circuit)?;
    println!(
        "QMDD baseline  : {:.3} s, {} nodes, |Σp − 1| = {:.1e}",
        run.elapsed.as_secs_f64(),
        run.stats.live_nodes.unwrap_or(0),
        run.probability_error(),
    );

    if BackendKind::Dense.check_circuit(&circuit).is_ok() && n <= 24 {
        let mut dense =
            Session::for_circuit(&circuit, SessionConfig::with_backend(BackendKind::Dense))?;
        let run = dense.run(&circuit)?;
        println!("dense oracle   : {:.3} s", run.elapsed.as_secs_f64());
        // Cross-check a handful of amplitudes across all three backends.
        let mut max_err: f64 = 0.0;
        for i in 0..16usize {
            let bits: Vec<bool> = (0..n)
                .map(|q| (i.wrapping_mul(2654435761) >> (q % 30)) & 1 == 1)
                .collect();
            let exact = bitslice
                .bitslice_mut()
                .expect("bit-sliced session")
                .amplitude(&bits)
                .to_complex();
            let d = dense.dense_mut().expect("dense session").amplitude(&bits);
            let q = qmdd.qmdd_mut().expect("qmdd session").amplitude(&bits);
            max_err = max_err.max((exact - d).norm()).max((q - d).norm());
        }
        println!("max amplitude deviation vs dense over 16 spot checks: {max_err:.3e}");

        // Weak simulation on a near-uniform distribution: the exact and
        // dense histograms stay statistically indistinguishable (total
        // variation distance shrinks with shot count).
        let shots = 20_000;
        let a = bitslice.sample(shots, 99)?;
        let b = dense.sample(shots, 99)?;
        let mut tv = 0.0;
        for outcome in 0..(1u64 << n) {
            tv += (a.histogram.frequency(outcome) - b.histogram.frequency(outcome)).abs();
        }
        println!(
            "sampling: {} shots at {:.0}/s (bitslice) vs {:.0}/s (dense); \
             total-variation distance between the histograms: {:.4}",
            shots,
            a.shots_per_sec(),
            b.shots_per_sec(),
            tv / 2.0
        );
    } else {
        println!("dense oracle   : skipped ({n} qubits exceeds the array-based limit)");
    }
    Ok(())
}
