//! Quickstart: build a Bell state, inspect its exact amplitudes, and sample
//! measurements with the bit-sliced BDD simulator.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use sliqsim::circuit::Simulator;
use sliqsim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the circuit with the fluent builder (or parse OpenQASM).
    let mut circuit = Circuit::new(2);
    circuit.h(0).cx(0, 1);
    println!("circuit:\n{circuit}");

    // 2. Run it on the exact bit-sliced BDD simulator.
    let mut sim = BitSliceSimulator::new(circuit.num_qubits());
    sim.run(&circuit)?;

    // 3. Amplitudes are exact algebraic numbers — no floating point involved.
    let amp00 = sim.amplitude(&[false, false]);
    let amp11 = sim.amplitude(&[true, true]);
    println!("⟨00|ψ⟩ = {amp00}  (= 1/√2 exactly)");
    println!("⟨11|ψ⟩ = {amp11}");
    println!(
        "state is exactly normalised: {}",
        sim.is_exactly_normalized()
    );

    // 4. Probabilities and measurement.
    println!("Pr[q1 = 1] = {}", sim.probability_of_one(1));
    let outcome0 = sim.measure_with(0, 0.3);
    let outcome1 = sim.measure_with(1, 0.7);
    println!(
        "measured q0 = {}, q1 = {} (Bell correlations force equality)",
        outcome0 as u8, outcome1 as u8
    );
    assert_eq!(outcome0, outcome1);

    // 5. Kernel introspection: the BDD manager uses complement edges, so
    //    negation is an O(1) bit flip and a function shares its whole
    //    subgraph with its own negation.  The counters double as a manual
    //    perf check — more complemented edges means more sharing.
    let stats = sim.state().manager().stats();
    let (complemented, nodes) = sim.state().complement_edge_count();
    println!(
        "kernel: {nodes} live BDD nodes ({complemented} complemented edges), \
         {} O(1) negations, {} canonical flips, cache hit-rate {:.1}%",
        stats.not_ops,
        stats.complement_flips,
        100.0 * stats.cache_hit_rate()
    );

    // 6. On hard workloads the kernel can sift its variable order: enable
    //    the automatic trigger with `.with_auto_reorder(true)`, or sift on
    //    demand.  Reordering never changes any amplitude — only the BDD
    //    shape — and every slice handle stays valid (the state registers
    //    its roots with the manager).
    let mut hard = BitSliceSimulator::new(20).with_auto_reorder(true);
    hard.run(&sliqsim::workloads::random::random_clifford_t(20, 1))?;
    let rstats = hard.state().manager().stats();
    println!(
        "reordering demo (random Clifford+T, 20 qubits): peak {} nodes, \
         {} reorders / {} swaps, last sift {} -> {} nodes",
        rstats.peak_nodes,
        rstats.reorders,
        rstats.reorder_swaps,
        rstats.reorder_last_before,
        rstats.reorder_last_after
    );

    // 7. The same circuit runs unchanged on every baseline backend.
    let mut dense = DenseSimulator::new(2);
    dense.run(&circuit)?;
    let mut qmdd = QmddSimulator::new(2);
    qmdd.run(&circuit)?;
    let mut chp = StabilizerSimulator::new(2);
    chp.run(&circuit)?;
    println!(
        "Pr[11] — dense: {:.6}, qmdd: {:.6}, stabilizer: {:.6}",
        dense.probability_of_basis_state(&[true, true]),
        qmdd.probability_of_basis_state(&[true, true]),
        chp.probability_of_basis_state(&[true, true]),
    );
    Ok(())
}
