//! Quickstart: open a `Session`, let the backend registry pick a simulator,
//! run a circuit, draw a batch of measurement shots, and checkpoint/restore
//! the state — the whole public surface in one tour.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use sliqsim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the circuit with the fluent builder (or parse OpenQASM).
    //    H·T makes it non-Clifford, so Auto selection picks the exact
    //    bit-sliced BDD backend (a pure Clifford circuit would go to the
    //    O(n²) stabilizer tableau instead).
    let mut circuit = Circuit::new(2);
    circuit.h(0).cx(0, 1).t(1);
    println!("circuit:\n{circuit}");

    // 2. Open a session negotiated for the circuit and run it.  The
    //    RunResult carries timing, normalization and representation stats.
    let config = SessionConfig::default().expectations(true);
    let mut session = Session::for_circuit(&circuit, config)?;
    println!(
        "backend: {} (capabilities: exact={}, reorder={})",
        session.kind(),
        session.kind().capabilities().exact,
        session.kind().capabilities().supports_reorder,
    );
    let result = session.run(&circuit)?;
    println!(
        "ran {} gates in {:.3} ms — |Σp − 1| = {:.1e}, {} live BDD nodes",
        result.gates_applied,
        result.elapsed.as_secs_f64() * 1e3,
        result.probability_error(),
        result.stats.live_nodes.unwrap_or(0),
    );
    println!(
        "per-qubit ⟨Z⟩ expectations: {:?}",
        result.expectations_z.as_deref().unwrap_or(&[])
    );

    // 3. Batched sampling: 10 000 measurement shots from the ONE simulated
    //    state — no per-shot re-simulation, no state collapse, reproducible
    //    under the seed.
    let shots = session.sample(10_000, 42)?;
    println!(
        "sampled {} shots in {:.3} ms ({:.0} shots/s):",
        shots.shots,
        shots.elapsed.as_secs_f64() * 1e3,
        shots.shots_per_sec()
    );
    print!("{}", shots.histogram.format_top(4));

    // 4. Checkpoints: snapshot, collapse destructively, then roll back.
    let checkpoint = session.snapshot();
    let outcome = session.measure_with(0, 0.3);
    println!(
        "collapsed q0 to {} — Pr[q1 = 1] is now {:.3}",
        outcome as u8,
        session.probability_of_one(1)
    );
    session.restore(&checkpoint)?;
    println!(
        "restored — Pr[q1 = 1] back to {:.3}",
        session.probability_of_one(1)
    );
    session.discard(checkpoint)?;

    // 5. Backend-specific extras stay reachable: the bit-sliced simulator
    //    exposes exact algebraic amplitudes (no floating point involved).
    if let Some(sim) = session.bitslice_mut() {
        let amp = sim.amplitude(&[true, true]);
        println!("⟨11|ψ⟩ = {amp}  (exact algebraic form)");
        println!("state exactly normalised: {}", sim.is_exactly_normalized());
        let stats = sim.state().manager().stats();
        println!(
            "kernel: {} O(1) negations, cache hit-rate {:.1}%",
            stats.not_ops,
            100.0 * stats.cache_hit_rate()
        );
    }

    // 6. The same session API drives every backend; ask for one explicitly
    //    to cross-check a probability on the QMDD baseline.
    let mut qmdd = Session::for_circuit(&circuit, SessionConfig::with_backend(BackendKind::Qmdd))?;
    qmdd.run(&circuit)?;
    println!(
        "Pr[11] — bitslice: {:.6}, qmdd: {:.6}",
        session.probability_of_basis_state(&[true, true]),
        qmdd.probability_of_basis_state(&[true, true]),
    );

    // 7. Identical seeds give identical histograms across exact backends on
    //    dyadic-probability circuits — the weak-simulation side of the
    //    paper served by the same representation as the strong side.
    let qmdd_shots = qmdd.sample(10_000, 42)?;
    println!(
        "histograms agree across backends under the shared seed: {}",
        qmdd_shots.histogram == shots.histogram
    );
    Ok(())
}
