//! Entanglement (GHZ) scaling across backends — the Table V experiment.
//!
//! Prepares GHZ states of growing size on the bit-sliced BDD simulator, the
//! QMDD baseline and the CHP stabilizer simulator, reporting wall-clock time
//! and representation size.  The dense backend is included only while it
//! still fits in memory (< 2³⁰ amplitudes).
//!
//! Run with:
//! ```text
//! cargo run --release --example ghz_scaling
//! ```

use sliqsim::circuit::Simulator;
use sliqsim::prelude::*;
use sliqsim::workloads::algorithms;
use std::time::Instant;

fn time<F: FnOnce() -> R, R>(f: F) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>8} | {:>12} | {:>12} | {:>12} | {:>12} | {:>7} {:>7}",
        "qubits", "bitslice(s)", "qmdd(s)", "chp(s)", "dense(s)", "nodes", "c-edges"
    );
    println!("{}", "-".repeat(88));
    for n in [16usize, 64, 256, 1024, 4096] {
        let circuit = algorithms::ghz(n);

        let (sim, t_bitslice) = time(|| {
            let mut sim = BitSliceSimulator::new(n);
            sim.run(&circuit).expect("supported gates");
            assert!((sim.probability_of_one(n - 1) - 0.5).abs() < 1e-12);
            sim
        });
        // Complement-edge sharing of the final state: how many of the live
        // high edges carry the O(1)-negation bit.  Walked outside the timed
        // region so the cross-backend comparison stays honest.
        let (complemented, nodes) = sim.state().complement_edge_count();

        let ((), t_qmdd) = time(|| {
            let mut sim = QmddSimulator::new(n);
            sim.run(&circuit).expect("supported gates");
            assert!((sim.probability_of_one(n - 1) - 0.5).abs() < 1e-9);
        });

        let ((), t_chp) = time(|| {
            let mut sim = StabilizerSimulator::new(n);
            sim.run(&circuit).expect("clifford circuit");
            assert_eq!(sim.probability_of_one(n - 1), 0.5);
        });

        let t_dense = if n <= 24 {
            let ((), t) = time(|| {
                let mut sim = DenseSimulator::new(n);
                sim.run(&circuit).expect("supported gates");
            });
            format!("{t:>12.4}")
        } else {
            format!("{:>12}", "—")
        };

        println!(
            "{n:>8} | {t_bitslice:>12.4} | {t_qmdd:>12.4} | {t_chp:>12.4} | {t_dense} | {nodes:>7} {complemented:>7}",
        );
    }
    println!();
    println!("CHP is fastest on this stabilizer-only family (as the paper notes); the");
    println!("bit-sliced simulator scales to thousands of qubits where array-based");
    println!("simulation is impossible, while remaining a general-purpose simulator.");
    Ok(())
}
