//! Entanglement (GHZ) scaling across backends — the Table V experiment,
//! driven entirely through the `Session` API.
//!
//! Prepares GHZ states of growing size on every registry backend that can
//! hold them, reporting wall-clock time and — where the register fits an
//! outcome word — batched sampling throughput.  The dense backend drops out
//! automatically past its qubit capacity (capability negotiation), and the
//! stabilizer tableau shines on this Clifford-only family, exactly as the
//! paper notes.
//!
//! Run with:
//! ```text
//! cargo run --release --example ghz_scaling
//! ```

use sliqsim::prelude::*;
use sliqsim::workloads::algorithms;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>8} | {:>12} | {:>12} | {:>12} | {:>12} | {:>12}",
        "qubits", "bitslice(s)", "qmdd(s)", "chp(s)", "dense(s)", "shots/s*"
    );
    println!("{}", "-".repeat(85));
    for n in [16usize, 64, 256, 1024, 4096] {
        let circuit = algorithms::ghz(n);
        let mut row: Vec<String> = Vec::new();
        let mut sample_rate = String::from("—");
        for kind in [
            BackendKind::BitSlice,
            BackendKind::Qmdd,
            BackendKind::Stabilizer,
            BackendKind::Dense,
        ] {
            // Capability negotiation: skip backends that cannot hold the
            // register instead of hand-rolling per-backend size checks.
            if kind.check_circuit(&circuit).is_err() {
                row.push(format!("{:>12}", "—"));
                continue;
            }
            let mut session = Session::for_circuit(&circuit, SessionConfig::with_backend(kind))?;
            let result = session.run(&circuit)?;
            assert!((session.probability_of_one(n - 1) - 0.5).abs() < 1e-9);
            row.push(format!("{:>12.4}", result.elapsed.as_secs_f64()));
            // Sampling throughput, measured once per row on the bit-sliced
            // backend (outcome words hold at most 64 qubits).
            if kind == BackendKind::BitSlice && n <= 64 {
                let shots = session.sample(8192, 1)?;
                // GHZ: only the two correlated outcomes ever appear.
                assert_eq!(shots.histogram.counts().len(), 2);
                sample_rate = format!("{:.0}", shots.shots_per_sec());
            }
        }
        println!(
            "{n:>8} | {} | {} | {} | {} | {sample_rate:>12}",
            row[0], row[1], row[2], row[3]
        );
    }
    println!();
    println!("* batched Session::sample on the bit-sliced backend (8192 shots, one simulation)");
    println!("CHP is fastest on this stabilizer-only family (as the paper notes); the");
    println!("bit-sliced simulator scales to thousands of qubits where array-based");
    println!("simulation is impossible, while remaining a general-purpose simulator.");
    Ok(())
}
