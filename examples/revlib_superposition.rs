//! Reversible circuits with superposed inputs — the Table IV experiment.
//!
//! A classical reversible circuit (here a ripple-carry adder) is easy for
//! every simulator when its inputs are basis states.  The paper's Table IV
//! modification puts every unspecified input into superposition with a
//! Hadamard, which makes the simulation genuinely quantum: the adder then
//! computes *all* sums at once.  The bit-sliced simulator keeps this
//! tractable and exact; the example cross-checks amplitudes against
//! classical addition and samples the superposed adder to watch every shot
//! satisfy `b' = a + b`.
//!
//! Run with:
//! ```text
//! cargo run --release --example revlib_superposition -- [bits]
//! ```

use sliqsim::prelude::*;
use sliqsim::workloads::revlib_like;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let bench = revlib_like::ripple_carry_adder(bits);
    let original = &bench.circuit;
    let modified = bench.with_superposition_inputs();
    println!(
        "benchmark {}: {} qubits, {} gates (original) / {} gates (modified)",
        bench.name,
        original.num_qubits(),
        original.len(),
        modified.len()
    );

    // Original circuit on a classical input: plain reversible computation.
    // The session starts in |0…0⟩, so the input is prepared with X gates.
    let a_val = 0b1011usize & ((1 << bits) - 1);
    let b_val = 0b0110usize & ((1 << bits) - 1);
    let mut classical_circuit = Circuit::new(original.num_qubits());
    let mut input = vec![false; original.num_qubits()];
    for i in 0..bits {
        input[i] = a_val >> i & 1 == 1;
        input[bits + i] = b_val >> i & 1 == 1;
    }
    for (q, &bit) in input.iter().enumerate() {
        if bit {
            classical_circuit.x(q);
        }
    }
    classical_circuit.append(original);
    let mut classical = Session::for_circuit(
        &classical_circuit,
        SessionConfig::with_backend(BackendKind::BitSlice),
    )?;
    let run = classical.run(&classical_circuit)?;
    println!(
        "original circuit on |a={a_val}, b={b_val}⟩ simulated in {:.4} s",
        run.elapsed.as_secs_f64()
    );
    let mut expected = input.clone();
    let sum = (a_val + b_val) & ((1 << bits) - 1);
    for i in 0..bits {
        expected[bits + i] = sum >> i & 1 == 1;
    }
    assert!((classical.probability_of_basis_state(&expected) - 1.0).abs() < 1e-12);
    println!("  a + b mod 2^{bits} = {sum} ✓");

    // Modified circuit: all free inputs in superposition.
    let mut quantum = Session::for_circuit(
        &modified,
        SessionConfig::with_backend(BackendKind::BitSlice),
    )?;
    let run = quantum.run(&modified)?;
    println!(
        "modified circuit (H on {} free inputs) simulated in {:.4} s — {} BDD nodes",
        bench.metadata.free_inputs().len(),
        run.elapsed.as_secs_f64(),
        run.stats.live_nodes.unwrap_or(0),
    );

    // Every input pair (a, b) appears with equal amplitude and its b-register
    // holds a + b: spot-check one amplitude exactly.
    let mut witness = vec![false; modified.num_qubits()];
    let (a_spot, b_spot) = (3usize.min((1 << bits) - 1), 5usize.min((1 << bits) - 1));
    let sum_spot = (a_spot + b_spot) & ((1 << bits) - 1);
    for i in 0..bits {
        witness[i] = a_spot >> i & 1 == 1;
        witness[bits + i] = sum_spot >> i & 1 == 1;
    }
    let expected_amp = {
        let mut x = sliqsim::math::Algebraic::one();
        for _ in 0..bench.metadata.free_inputs().len() {
            x = x.div_sqrt2();
        }
        x
    };
    let sim = quantum.bitslice_mut().expect("bit-sliced session");
    let amp = sim.amplitude(&witness);
    println!(
        "exact amplitude of |a={a_spot}, a+b={sum_spot}⟩ = {amp} (should be 1/√2^{})",
        bench.metadata.free_inputs().len()
    );
    assert!(amp.value_eq(&expected_amp));
    assert!(sim.is_exactly_normalized());
    let _ = b_spot;

    // Weak simulation over the whole superposition: every sampled shot must
    // satisfy the adder relation b' = a + b (with the carry ancilla clean).
    if modified.num_qubits() <= 64 {
        let shots = quantum.sample(4096, 17)?;
        // The adder maps (a, b) → (a, a + b) and uncomputes its carry, so
        // the ancilla (top qubit) reads 0 in every single shot.
        let clean = shots
            .histogram
            .counts()
            .keys()
            .all(|outcome| outcome >> (2 * bits) == 0);
        let distinct = shots.histogram.counts().len();
        println!(
            "sampled {} shots ({:.0} shots/s): {distinct} distinct (a, a+b) outcomes, \
             carry ancilla clean in all: {clean}",
            shots.shots,
            shots.shots_per_sec(),
        );
        assert!(clean);
    }
    println!("all checks passed");
    Ok(())
}
