//! Reversible circuits with superposed inputs — the Table IV experiment.
//!
//! A classical reversible circuit (here a ripple-carry adder) is easy for
//! every simulator when its inputs are basis states.  The paper's Table IV
//! modification puts every unspecified input into superposition with a
//! Hadamard, which makes the simulation genuinely quantum: the adder then
//! computes *all* sums at once.  The bit-sliced simulator keeps this
//! tractable and exact; the example cross-checks a few amplitudes against
//! classical addition.
//!
//! Run with:
//! ```text
//! cargo run --release --example revlib_superposition -- [bits]
//! ```

use sliqsim::circuit::Simulator;
use sliqsim::prelude::*;
use sliqsim::workloads::revlib_like;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let bench = revlib_like::ripple_carry_adder(bits);
    let original = &bench.circuit;
    let modified = bench.with_superposition_inputs();
    println!(
        "benchmark {}: {} qubits, {} gates (original) / {} gates (modified)",
        bench.name,
        original.num_qubits(),
        original.len(),
        modified.len()
    );

    // Original circuit on a classical input: plain reversible computation.
    let a_val = 0b1011usize & ((1 << bits) - 1);
    let b_val = 0b0110usize & ((1 << bits) - 1);
    let mut input = vec![false; original.num_qubits()];
    for i in 0..bits {
        input[i] = a_val >> i & 1 == 1;
        input[bits + i] = b_val >> i & 1 == 1;
    }
    let mut classical = BitSliceSimulator::with_initial_bits(&input);
    let start = Instant::now();
    classical.run(original)?;
    println!(
        "original circuit on |a={a_val}, b={b_val}⟩ simulated in {:.4} s",
        start.elapsed().as_secs_f64()
    );
    let mut expected = input.clone();
    let sum = (a_val + b_val) & ((1 << bits) - 1);
    for i in 0..bits {
        expected[bits + i] = sum >> i & 1 == 1;
    }
    assert!((classical.probability_of_basis_state(&expected) - 1.0).abs() < 1e-12);
    println!("  a + b mod 2^{bits} = {sum} ✓");

    // Modified circuit: all free inputs in superposition.
    let mut quantum = BitSliceSimulator::new(modified.num_qubits());
    let start = Instant::now();
    quantum.run(&modified)?;
    println!(
        "modified circuit (H on {} free inputs) simulated in {:.4} s — {} BDD nodes, width r = {}",
        bench.metadata.free_inputs().len(),
        start.elapsed().as_secs_f64(),
        quantum.node_count(),
        quantum.width()
    );
    assert!(quantum.is_exactly_normalized());

    // Every input pair (a, b) appears with equal amplitude and its b-register
    // holds a + b: spot-check one amplitude exactly.
    let mut witness = vec![false; modified.num_qubits()];
    let (a_spot, b_spot) = (3usize.min((1 << bits) - 1), 5usize.min((1 << bits) - 1));
    let sum_spot = (a_spot + b_spot) & ((1 << bits) - 1);
    for i in 0..bits {
        witness[i] = a_spot >> i & 1 == 1;
        witness[bits + i] = sum_spot >> i & 1 == 1;
    }
    let amp = quantum.amplitude(&witness);
    println!(
        "exact amplitude of |a={a_spot}, a+b={sum_spot}⟩ = {amp} (should be 1/√2^{})",
        bench.metadata.free_inputs().len()
    );
    let expected_amp = {
        let mut x = sliqsim::math::Algebraic::one();
        for _ in 0..bench.metadata.free_inputs().len() {
            x = x.div_sqrt2();
        }
        x
    };
    assert!(amp.value_eq(&expected_amp));
    let _ = b_spot;
    println!("all checks passed");
    Ok(())
}
