//! Bernstein–Vazirani at a scale no array-based simulator can touch.
//!
//! The BV circuit over `n` data qubits hides an `n`-bit secret inside a
//! phase oracle; a single query recovers it.  The state never develops more
//! than a little structure, so the bit-sliced BDD simulator handles hundreds
//! or thousands of qubits — this is the Table V experiment of the paper,
//! where DDSIM starts reporting numerical errors at 90 qubits while the
//! exact backend keeps going.
//!
//! Run with:
//! ```text
//! cargo run --release --example bernstein_vazirani -- [num_qubits]
//! ```

use sliqsim::circuit::Simulator;
use sliqsim::prelude::*;
use sliqsim::workloads::algorithms;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_qubits: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let data_qubits = num_qubits - 1;

    // A pseudo-random secret so the oracle is not trivially uniform.
    let secret: Vec<bool> = (0..data_qubits)
        .map(|i| (i * 2654435761) % 3 != 0)
        .collect();
    let circuit = algorithms::bernstein_vazirani(&secret);
    println!(
        "Bernstein–Vazirani: {} qubits, {} gates, secret weight {}",
        circuit.num_qubits(),
        circuit.len(),
        secret.iter().filter(|&&b| b).count()
    );

    let start = Instant::now();
    let mut sim = BitSliceSimulator::new(circuit.num_qubits());
    sim.run(&circuit)?;
    let elapsed = start.elapsed();

    // Read the secret back from the (deterministic) measurement outcomes.
    let mut recovered = Vec::with_capacity(data_qubits);
    for q in 0..data_qubits {
        recovered.push(sim.probability_of_one(q) > 0.5);
    }
    assert_eq!(recovered, secret, "BV must recover the secret exactly");

    println!(
        "simulated in {:.3} s — {} live BDD nodes, integer width r = {}, k = {}",
        elapsed.as_secs_f64(),
        sim.node_count(),
        sim.width(),
        sim.k()
    );
    println!("secret recovered exactly: true");
    println!("state exactly normalised: {}", sim.is_exactly_normalized());
    Ok(())
}
