//! Bernstein–Vazirani at a scale no array-based simulator can touch.
//!
//! The BV circuit over `n` data qubits hides an `n`-bit secret inside a
//! phase oracle; a single query recovers it.  The state never develops more
//! than a little structure, so the bit-sliced BDD simulator handles hundreds
//! or thousands of qubits — this is the Table V experiment of the paper,
//! where DDSIM starts reporting numerical errors at 90 qubits while the
//! exact backend keeps going.
//!
//! The circuit is pure Clifford (H, X, CNOT), so `BackendKind::Auto` would
//! route it to the stabilizer tableau; we pin the bit-sliced backend because
//! the exactness story is the point of this example.
//!
//! Run with:
//! ```text
//! cargo run --release --example bernstein_vazirani -- [num_qubits]
//! ```

use sliqsim::prelude::*;
use sliqsim::workloads::algorithms;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_qubits: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let data_qubits = num_qubits - 1;

    // A pseudo-random secret so the oracle is not trivially uniform.
    let secret: Vec<bool> = (0..data_qubits)
        .map(|i| (i * 2654435761) % 3 != 0)
        .collect();
    let circuit = algorithms::bernstein_vazirani(&secret);
    println!(
        "Bernstein–Vazirani: {} qubits, {} gates, secret weight {}",
        circuit.num_qubits(),
        circuit.len(),
        secret.iter().filter(|&&b| b).count()
    );

    let config = SessionConfig::with_backend(BackendKind::BitSlice);
    let mut session = Session::for_circuit(&circuit, config)?;
    let result = session.run(&circuit)?;

    // Read the secret back from the (deterministic) measurement outcomes.
    let mut recovered = Vec::with_capacity(data_qubits);
    for q in 0..data_qubits {
        recovered.push(session.probability_of_one(q) > 0.5);
    }
    assert_eq!(recovered, secret, "BV must recover the secret exactly");

    println!(
        "simulated in {:.3} s — {} live BDD nodes, |Σp − 1| = {:.1e}",
        result.elapsed.as_secs_f64(),
        result.stats.live_nodes.unwrap_or(0),
        result.probability_error(),
    );
    println!("secret recovered exactly: true");

    // On registers that fit an outcome word, draw shots too: every shot's
    // data bits equal the secret (only the |−⟩ ancilla is random).
    if num_qubits <= 64 {
        let shots = session.sample(10_000, 7)?;
        let data_mask = (1u64 << data_qubits) - 1;
        let secret_word = secret
            .iter()
            .enumerate()
            .fold(0u64, |acc, (q, &b)| acc | (u64::from(b) << q));
        let all_match = shots
            .histogram
            .counts()
            .keys()
            .all(|outcome| outcome & data_mask == secret_word);
        println!(
            "sampled {} shots ({:.0} shots/s): every shot reads the secret: {}",
            shots.shots,
            shots.shots_per_sec(),
            all_match
        );
        assert!(all_match);
    }
    Ok(())
}
