//! Grover search simulated exactly — an extension workload showing that the
//! bit-sliced backend handles wide multi-controlled gates and amplitude
//! amplification without any floating point in the state.
//!
//! Run with:
//! ```text
//! cargo run --release --example grover_search -- [num_qubits]
//! ```

use sliqsim::circuit::Simulator;
use sliqsim::prelude::*;
use sliqsim::workloads::grover;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    // Mark a pseudo-random basis state.
    let marked: Vec<bool> = (0..n).map(|i| (i * 7 + 3) % 5 < 2).collect();
    let iterations = grover::optimal_iterations(n);
    let circuit = grover::grover(&marked, iterations);
    println!(
        "Grover search over {n} qubits (search space 2^{n}), {iterations} iterations, {} gates",
        circuit.len()
    );

    let start = Instant::now();
    let mut sim = BitSliceSimulator::new(n);
    sim.run(&circuit)?;
    let elapsed = start.elapsed();

    let p_marked = sim.probability_of_basis_state(&marked);
    println!(
        "simulated in {:.3} s — {} BDD nodes, width r = {}, k = {}",
        elapsed.as_secs_f64(),
        sim.node_count(),
        sim.width(),
        sim.k()
    );
    println!(
        "probability of the marked item after {iterations} iterations: {:.6} (uniform guessing: {:.6})",
        p_marked,
        1.0 / (1u64 << n) as f64
    );
    println!("state exactly normalised: {}", sim.is_exactly_normalized());
    assert!(p_marked > 0.5);

    // Sample a measurement of all qubits and check it finds the marked item.
    let us: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 97) as f64 / 97.0).collect();
    let sample = sim.state_mut().sample_all(&us);
    println!(
        "sampled outcome matches the marked item: {}",
        sample == marked
    );
    Ok(())
}
