//! Grover search simulated exactly — an extension workload showing that the
//! bit-sliced backend handles wide multi-controlled gates and amplitude
//! amplification without any floating point in the state.
//!
//! Run with:
//! ```text
//! cargo run --release --example grover_search -- [num_qubits]
//! ```

use sliqsim::prelude::*;
use sliqsim::workloads::grover;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    // Mark a pseudo-random basis state.
    let marked: Vec<bool> = (0..n).map(|i| (i * 7 + 3) % 5 < 2).collect();
    let iterations = grover::optimal_iterations(n);
    let circuit = grover::grover(&marked, iterations);
    println!(
        "Grover search over {n} qubits (search space 2^{n}), {iterations} iterations, {} gates",
        circuit.len()
    );

    // The oracle uses Toffoli gates, so Auto resolves to the bit-sliced
    // backend.
    let mut session = Session::for_circuit(&circuit, SessionConfig::default())?;
    assert_eq!(session.kind(), BackendKind::BitSlice);
    let result = session.run(&circuit)?;

    let p_marked = session.probability_of_basis_state(&marked);
    println!(
        "simulated in {:.3} s — {} live BDD nodes ({:.2} MiB peak)",
        result.elapsed.as_secs_f64(),
        result.stats.live_nodes.unwrap_or(0),
        result.stats.memory_mib,
    );
    println!(
        "probability of the marked item after {iterations} iterations: {:.6} (uniform guessing: {:.6})",
        p_marked,
        1.0 / (1u64 << n) as f64
    );
    assert!(p_marked > 0.5);

    // Weak simulation: sample the search result many times from the one
    // amplified state; the marked item dominates the histogram.
    let shots = session.sample(10_000, 13)?;
    let marked_word = marked
        .iter()
        .enumerate()
        .fold(0u64, |acc, (q, &b)| acc | (u64::from(b) << q));
    let (top, count) = shots.histogram.most_frequent().expect("shots were drawn");
    println!(
        "sampled {} shots ({:.0} shots/s) — top outcome observed {} times:",
        shots.shots,
        shots.shots_per_sec(),
        count
    );
    print!("{}", shots.histogram.format_top(3));
    assert_eq!(top, marked_word, "the marked item must dominate");

    // The amplitude behind those statistics is still reachable (the
    // amplified state's integer coefficients outgrow the 63-bit exact
    // accessor, so read the arbitrary-width complex form).
    if let Some(sim) = session.bitslice_mut() {
        println!(
            "amplitude of the marked item: {} (integer width r = {})",
            sim.amplitude_complex(&marked),
            sim.width()
        );
        println!("state exactly normalised: {}", sim.is_exactly_normalized());
    }
    Ok(())
}
