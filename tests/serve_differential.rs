//! The serving front-end's correctness contract: a live TCP server under
//! concurrent clients must return results bit-identical to direct
//! `Session` execution — same gates applied, same total-probability bits,
//! same sampling histograms — and per-tenant byte budgets must fail the
//! over-budget tenant over the wire without disturbing anyone else.

use sliqsim::exec::wire;
use sliqsim::prelude::*;
use sliqsim::serve::{Client, ClientError, RunOptions, Server, ServerConfig};
use sliqsim::workloads::{algorithms, random};

const SHOTS: u64 = 512;
const SEED: u64 = 9;

/// What a direct (in-process) session produces for one circuit.
struct Expected {
    backend: BackendKind,
    gates_applied: u64,
    total_probability_bits: u64,
    counts: Vec<(u64, u64)>,
}

fn direct(circuit: &Circuit) -> Expected {
    // Mirror the server's session configuration exactly (one kernel
    // thread), so "bit-identical" is a statement about the serving path,
    // not about kernel scheduling.
    let config = SessionConfig::default().threads(1);
    let mut session = Session::for_circuit(circuit, config).expect("reference session opens");
    let run = session.run(circuit).expect("reference run completes");
    let sample = session
        .sample(SHOTS, SEED)
        .expect("reference sampling works");
    Expected {
        backend: run.backend,
        gates_applied: run.gates_applied as u64,
        total_probability_bits: run.total_probability.to_bits(),
        counts: sample
            .histogram
            .counts()
            .iter()
            .map(|(&outcome, &count)| (outcome, count))
            .collect(),
    }
}

fn population() -> Vec<Circuit> {
    vec![
        random::random_clifford_t(10, 1),
        random::random_clifford_t(11, 2),
        random::random_clifford_t(12, 3),
        algorithms::ghz(12),
        algorithms::bernstein_vazirani_all_ones(12),
        random::random_clifford_t(10, 4),
        random::random_clifford_t(11, 5),
        random::random_clifford_t(12, 6),
    ]
}

#[test]
fn eight_concurrent_connections_match_direct_sessions_bit_for_bit() {
    let handle = Server::bind(
        "127.0.0.1:0",
        ServerConfig::default().workers(3).session_threads(1),
    )
    .expect("bind")
    .spawn()
    .expect("spawn");
    let addr = handle.addr();
    let circuits = population();
    let expected: Vec<Expected> = circuits.iter().map(direct).collect();

    std::thread::scope(|scope| {
        for client_index in 0..8 {
            let circuits = &circuits;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                // Each client walks the population from its own offset, so
                // every circuit is in flight on several connections at once.
                for step in 0..circuits.len() {
                    let index = (client_index + step * 3) % circuits.len();
                    let outcome = client
                        .run_circuit(
                            &circuits[index],
                            RunOptions {
                                shots: SHOTS,
                                seed: SEED,
                                ..RunOptions::default()
                            },
                        )
                        .expect("remote run completes");
                    let reference = &expected[index];
                    assert_eq!(outcome.backend, reference.backend, "circuit {index}");
                    assert_eq!(
                        outcome.gates_applied, reference.gates_applied,
                        "circuit {index}"
                    );
                    assert_eq!(
                        outcome.total_probability.to_bits(),
                        reference.total_probability_bits,
                        "circuit {index}: total probability must be bit-identical"
                    );
                    let histogram = outcome.histogram.expect("shots were requested");
                    assert_eq!(histogram.shots, SHOTS, "circuit {index}");
                    assert_eq!(
                        histogram.counts, reference.counts,
                        "circuit {index}: histogram must be bit-identical"
                    );
                }
            });
        }
    });

    let stats = handle.stats();
    assert_eq!(stats.get("requests_ok"), Some(8 * circuits.len() as u64));
    assert_eq!(stats.get("requests_error"), Some(0));
    assert!(stats.get("connections_accepted").unwrap() >= 8);
    handle.shutdown();
}

#[test]
fn over_budget_tenant_fails_on_the_wire_while_others_are_unaffected() {
    // "cramped" gets a budget below the kernel's baseline footprint, so its
    // bit-sliced run trips CapacityExceeded at the first gate boundary.
    let handle = Server::bind(
        "127.0.0.1:0",
        ServerConfig::default()
            .workers(2)
            .session_threads(1)
            .tenant_budget("cramped", 64 * 1024),
    )
    .expect("bind")
    .spawn()
    .expect("spawn");
    let addr = handle.addr();
    let heavy = random::random_clifford_t(16, 7);
    let expected = direct(&heavy);

    std::thread::scope(|scope| {
        // Four unbudgeted tenants run the heavy circuit concurrently and
        // must see exactly the direct-session result.
        for _ in 0..4 {
            let heavy = &heavy;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let outcome = client
                    .run_circuit(
                        heavy,
                        RunOptions {
                            shots: SHOTS,
                            seed: SEED,
                            ..RunOptions::default()
                        },
                    )
                    .expect("unbudgeted tenants are unaffected");
                assert_eq!(
                    outcome.total_probability.to_bits(),
                    expected.total_probability_bits
                );
                assert_eq!(
                    outcome.histogram.expect("shots requested").counts,
                    expected.counts
                );
            });
        }
        // The cramped tenant, interleaved with them, gets the stable
        // capacity code over the wire.
        let heavy = &heavy;
        scope.spawn(move || {
            let mut client = Client::connect(addr).expect("client connects");
            for _ in 0..2 {
                let err = client
                    .run_circuit(
                        heavy,
                        RunOptions {
                            tenant: "cramped".into(),
                            ..RunOptions::default()
                        },
                    )
                    .expect_err("the cramped tenant's budget must trip");
                match err {
                    ClientError::Remote { code, message } => {
                        assert_eq!(code, wire::CAPACITY_BYTES);
                        assert!(
                            message.contains("memory budget"),
                            "message should explain the budget: {message}"
                        );
                    }
                    other => panic!("expected a remote capacity error, got {other}"),
                }
                // The connection (and server) survive the failure.
                client.ping().expect("connection stays usable");
            }
        });
    });

    let stats = handle.stats();
    assert_eq!(stats.get("requests_ok"), Some(4));
    assert_eq!(stats.get("requests_error"), Some(2));
    handle.shutdown();
}
