//! Differential tests for parallel slice application: the fan-out width
//! must be **unobservable** — for random Clifford+T circuits at several
//! widths, running the bit-sliced backend with 1/2/4/8 threads produces
//! slice functions with identical `eval`/`sat_count`/`amplitude` results,
//! identical probabilities, and a kernel that passes the exhaustive
//! `Manager::check_integrity` after every circuit.  The seeded
//! `Session::sample` histograms (including the parallel descent path) are
//! bit-identical across thread counts.
//!
//! All comparisons are *exact* (integer/`NodeId` equality, or `f64`s whose
//! every input is an exact SAT count): any scheduling-dependent behaviour
//! shows up as a hard failure, not a tolerance miss.

use sliqsim::circuit::Simulator;
use sliqsim::prelude::*;
use sliqsim::workloads::{algorithms, random};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn run_bitslice(circuit: &Circuit, threads: usize, reorder: bool) -> BitSliceSimulator {
    let mut sim = BitSliceSimulator::new(circuit.num_qubits())
        .with_threads(threads)
        .with_auto_reorder(reorder);
    sim.run(circuit).expect("supported gates");
    assert_eq!(sim.threads(), threads);
    sim
}

/// A deterministic sample of basis states (all of them for small registers).
fn probe_states(n: usize) -> Vec<Vec<bool>> {
    if n <= 10 {
        (0..(1usize << n))
            .map(|i| (0..n).map(|q| i >> q & 1 == 1).collect())
            .collect()
    } else {
        let mut state = 0x0123_4567_89AB_CDEFu64;
        (0..256)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (0..n).map(|q| state >> (q % 58) & 1 == 1).collect()
            })
            .collect()
    }
}

/// The full differential comparison of one circuit across thread counts.
fn assert_thread_count_invariance(circuit: &Circuit, reorder: bool) {
    let n = circuit.num_qubits();
    let mut serial = run_bitslice(circuit, 1, reorder);
    serial
        .state()
        .manager()
        .check_integrity()
        .expect("serial integrity");
    let states = probe_states(n);
    let serial_total = serial.total_probability();
    let serial_probs: Vec<f64> = (0..n).map(|q| serial.probability_of_one(q)).collect();
    let serial_amps: Vec<Algebraic> = states.iter().map(|bits| serial.amplitude(bits)).collect();
    let serial_counts: Vec<sliqsim::bignum::UBig> = serial
        .state()
        .all_roots()
        .iter()
        .map(|&slice| serial.state().manager().sat_count(slice, n))
        .collect();
    assert!(serial.is_exactly_normalized());

    for &threads in &THREAD_COUNTS[1..] {
        let mut parallel = run_bitslice(circuit, threads, reorder);
        parallel
            .state()
            .manager()
            .check_integrity()
            .unwrap_or_else(|e| panic!("integrity at {threads} threads: {e}"));
        // The representation scalars agree exactly.
        assert_eq!(parallel.width(), serial.width(), "{threads} threads");
        assert_eq!(parallel.k(), serial.k(), "{threads} threads");
        // Slice-level sat counts agree exactly (slice j of family F in the
        // parallel run denotes the same Boolean function as in the serial
        // run, so its model count is the same arbitrary-precision integer).
        let counts: Vec<sliqsim::bignum::UBig> = parallel
            .state()
            .all_roots()
            .iter()
            .map(|&slice| parallel.state().manager().sat_count(slice, n))
            .collect();
        assert_eq!(counts, serial_counts, "{threads} threads: sat counts");
        // Slice-level eval agrees on every probe state.
        for bits in &states {
            for (i, (&ps, &ss)) in parallel
                .state()
                .all_roots()
                .iter()
                .zip(serial.state().all_roots().iter())
                .enumerate()
            {
                assert_eq!(
                    parallel.state().manager().eval(ps, bits),
                    serial.state().manager().eval(ss, bits),
                    "{threads} threads: slice {i} eval"
                );
            }
        }
        // Exact amplitudes and probabilities are bit-identical.
        for (bits, expected) in states.iter().zip(&serial_amps) {
            assert_eq!(
                &parallel.amplitude(bits),
                expected,
                "{threads} threads: amplitude at {bits:?}"
            );
        }
        for (q, &expected) in serial_probs.iter().enumerate() {
            assert_eq!(
                parallel.probability_of_one(q),
                expected,
                "{threads} threads: Pr[q{q}=1]"
            );
        }
        assert_eq!(
            parallel.total_probability(),
            serial_total,
            "{threads} threads: total probability"
        );
        assert!(parallel.is_exactly_normalized());
    }
}

#[test]
fn one_thread_sessions_select_the_serial_kernel() {
    use sliqsim::bdd::KernelMode;
    let circuit = random::random_clifford_t(8, 2);
    let serial = run_bitslice(&circuit, 1, false);
    assert_eq!(serial.kernel_mode(), KernelMode::Serial);
    assert_eq!(
        serial.state().manager().stats().kernel_mode,
        KernelMode::Serial
    );
    let shared = run_bitslice(&circuit, 4, false);
    assert_eq!(shared.kernel_mode(), KernelMode::Shared);
}

#[test]
fn serial_fast_path_and_forced_shared_kernel_agree_exactly() {
    use sliqsim::bdd::KernelMode;
    // The same circuit through three kernel configurations: the 1-thread
    // serial fast paths, the shared CAS/seqlock machinery forced at 1
    // thread, and the genuinely concurrent 4-thread run.  All slice
    // functions, amplitudes and probabilities must be bit-identical.
    for &(qubits, seed) in &[(8usize, 21u64), (12, 6)] {
        let circuit = random::random_clifford_t(qubits, seed);
        let n = circuit.num_qubits();
        let mut fast = run_bitslice(&circuit, 1, false);
        assert_eq!(fast.kernel_mode(), KernelMode::Serial);
        let mut forced = BitSliceSimulator::new(n)
            .with_threads(1)
            .with_kernel_mode(KernelMode::Shared);
        forced.run(&circuit).expect("supported gates");
        assert_eq!(forced.kernel_mode(), KernelMode::Shared);
        let mut shared = run_bitslice(&circuit, 4, false);
        for sim in [&fast, &forced, &shared] {
            sim.state().manager().check_integrity().expect("integrity");
        }
        assert_eq!(forced.width(), fast.width());
        assert_eq!(forced.k(), fast.k());
        assert_eq!(shared.width(), fast.width());
        assert_eq!(shared.k(), fast.k());
        let counts = |sim: &BitSliceSimulator| -> Vec<sliqsim::bignum::UBig> {
            sim.state()
                .all_roots()
                .iter()
                .map(|&slice| sim.state().manager().sat_count(slice, n))
                .collect()
        };
        let fast_counts = counts(&fast);
        assert_eq!(counts(&forced), fast_counts, "forced-shared sat counts");
        assert_eq!(counts(&shared), fast_counts, "4-thread sat counts");
        for bits in probe_states(n) {
            let expected = fast.amplitude(&bits);
            assert_eq!(forced.amplitude(&bits), expected);
            assert_eq!(shared.amplitude(&bits), expected);
        }
        for q in 0..n {
            let expected = fast.probability_of_one(q);
            assert_eq!(forced.probability_of_one(q), expected);
            assert_eq!(shared.probability_of_one(q), expected);
        }
        assert!(fast.is_exactly_normalized());
        assert!(forced.is_exactly_normalized());
    }
}

#[test]
fn parallel_sifting_matches_serial_sifting_across_thread_counts() {
    // Explicit reorder runs after the same circuit must make identical
    // sifting decisions at every thread count: same swap count, same final
    // live size, same final variable order, and an intact kernel.
    for &(qubits, seed) in &[(12usize, 3u64), (14, 8)] {
        let circuit = random::random_clifford_t(qubits, seed);
        let mut reference: Option<(u64, usize, Vec<usize>)> = None;
        for &threads in &THREAD_COUNTS {
            let mut sim = run_bitslice(&circuit, threads, false);
            let stats = sim.reorder();
            sim.state()
                .manager()
                .check_integrity()
                .unwrap_or_else(|e| panic!("integrity after reorder at {threads} threads: {e}"));
            let order: Vec<usize> = (0..qubits)
                .map(|level| sim.state().manager().var_at_level(level))
                .collect();
            match &reference {
                None => reference = Some((stats.swaps, stats.size_after, order)),
                Some((swaps, size_after, expected_order)) => {
                    assert_eq!(stats.swaps, *swaps, "{threads} threads: swap count");
                    assert_eq!(
                        stats.size_after, *size_after,
                        "{threads} threads: final node count"
                    );
                    assert_eq!(&order, expected_order, "{threads} threads: final order");
                }
            }
        }
    }
}

#[test]
fn parallel_apply_is_identical_to_serial_on_random_clifford_t() {
    for &(qubits, seed) in &[(6usize, 11u64), (10, 5), (14, 1)] {
        let circuit = random::random_clifford_t(qubits, seed);
        assert_thread_count_invariance(&circuit, false);
    }
}

#[test]
fn parallel_apply_is_identical_to_serial_on_the_full_gate_set() {
    let circuit = random::random_circuit(
        &random::RandomCircuitConfig {
            num_qubits: 8,
            num_gates: 120,
            initial_hadamard_layer: true,
            gate_set: random::RandomGateSet::Full,
        },
        2026,
    );
    assert_thread_count_invariance(&circuit, false);
}

#[test]
fn parallel_apply_is_identical_under_auto_reorder() {
    // Reordering and GC are stop-the-world phases between gates; they must
    // compose with the fan-out without observable effect.
    let circuit = random::random_clifford_t(12, 3);
    assert_thread_count_invariance(&circuit, true);
}

#[test]
fn ghz_and_bv_are_thread_count_invariant() {
    for circuit in [
        algorithms::ghz(16),
        algorithms::bernstein_vazirani_all_ones(12),
    ] {
        assert_thread_count_invariance(&circuit, false);
    }
}

#[test]
fn sample_histograms_are_bit_identical_across_thread_counts() {
    // Clifford+T forces the bit-sliced backend under Auto; the multi-thread
    // sessions additionally exercise the parallel descent of the sampling
    // trie (independent subtrees fanned over the pool).
    let circuit = random::random_clifford_t(10, 9);
    let mut reference: Option<std::sync::Arc<Histogram>> = None;
    for &threads in &THREAD_COUNTS {
        let config = SessionConfig::with_backend(BackendKind::BitSlice).threads(threads);
        let mut session = Session::for_circuit(&circuit, config).expect("session");
        session.run(&circuit).expect("run");
        let sample = session.sample(4096, 42).expect("sample");
        assert_eq!(sample.histogram.shots(), 4096);
        match &reference {
            None => reference = Some(sample.histogram),
            Some(expected) => assert_eq!(
                &sample.histogram, expected,
                "histogram differs at {threads} threads"
            ),
        }
    }
    // Distinct seeds still differ (the determinism is per seed, not a
    // degenerate constant histogram).
    let config = SessionConfig::with_backend(BackendKind::BitSlice).threads(2);
    let mut session = Session::for_circuit(&circuit, config).expect("session");
    session.run(&circuit).expect("run");
    let other_seed = session.sample(4096, 43).expect("sample").histogram;
    assert_ne!(Some(other_seed), reference);
}

#[test]
fn sampling_determinism_holds_after_measurement_collapse() {
    // The descent must also be thread-count invariant on a state with a
    // non-trivial normalisation factor (post-measurement `s != 1`).
    let circuit = random::random_clifford_t(8, 4);
    let mut reference: Option<std::sync::Arc<Histogram>> = None;
    for &threads in &THREAD_COUNTS {
        let config = SessionConfig::with_backend(BackendKind::BitSlice).threads(threads);
        let mut session = Session::for_circuit(&circuit, config).expect("session");
        session.run(&circuit).expect("run");
        session.measure_with(0, 0.3);
        let sample = session.sample(1024, 7).expect("sample");
        match &reference {
            None => reference = Some(sample.histogram),
            Some(expected) => assert_eq!(
                &sample.histogram, expected,
                "post-collapse histogram differs at {threads} threads"
            ),
        }
    }
}

/// The tentpole's perf acceptance bar: with ≥ 4 threads, whole-circuit
/// `random_clifford_t(20)` (fixed order, reorder off) is ≥ 1.5× faster than
/// the single-thread path.  Wall-clock perf needs real cores and a quiet
/// machine, so the test is gated like the other perf acceptance tests: set
/// `SLIQ_PERF_TEST=1` on a machine with ≥ 4 hardware threads.
#[test]
fn perf_parallel_apply_speedup_on_random_clifford_t_20() {
    if std::env::var_os("SLIQ_PERF_TEST").is_none() {
        eprintln!("skipped (set SLIQ_PERF_TEST=1 to run the wall-clock acceptance test)");
        return;
    }
    let available = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    if available < 4 {
        eprintln!("skipped (needs >= 4 hardware threads, have {available})");
        return;
    }
    let circuit = random::random_clifford_t(20, 1);
    let median_secs = |threads: usize| -> f64 {
        let mut runs: Vec<f64> = (0..3)
            .map(|_| {
                let start = std::time::Instant::now();
                let _ = run_bitslice(&circuit, threads, false);
                start.elapsed().as_secs_f64()
            })
            .collect();
        runs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        runs[1]
    };
    let serial = median_secs(1);
    let parallel = median_secs(4);
    let speedup = serial / parallel;
    eprintln!("rc_t(20): serial {serial:.3}s, 4 threads {parallel:.3}s, speedup {speedup:.2}x");
    assert!(
        speedup >= 1.5,
        "4-thread whole-circuit speedup {speedup:.2}x below the 1.5x acceptance bar"
    );
}

/// The phase-typed kernel's perf acceptance bar, encoded machine-
/// independently as a ratio: the 1-thread serial fast paths must run the
/// whole-circuit workload within 1.05× of the shared CAS/seqlock kernel
/// forced at 1 thread (in practice they are faster — the bar guards against
/// the mode dispatch itself becoming a regression).  Gated like the other
/// wall-clock tests: set `SLIQ_PERF_TEST=1` on a quiet machine.
#[test]
fn perf_serial_fast_path_within_bounds_of_forced_shared() {
    if std::env::var_os("SLIQ_PERF_TEST").is_none() {
        eprintln!("skipped (set SLIQ_PERF_TEST=1 to run the wall-clock acceptance test)");
        return;
    }
    use sliqsim::bdd::KernelMode;
    let circuit = random::random_clifford_t(20, 1);
    let median_secs = |mode: KernelMode| -> f64 {
        let mut runs: Vec<f64> = (0..3)
            .map(|_| {
                let start = std::time::Instant::now();
                let mut sim = BitSliceSimulator::new(circuit.num_qubits())
                    .with_threads(1)
                    .with_kernel_mode(mode);
                sim.run(&circuit).expect("supported gates");
                assert_eq!(sim.kernel_mode(), mode);
                start.elapsed().as_secs_f64()
            })
            .collect();
        runs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        runs[1]
    };
    let fast = median_secs(KernelMode::Serial);
    let forced = median_secs(KernelMode::Shared);
    eprintln!(
        "rc_t(20) at 1 thread: serial kernel {fast:.3}s, forced shared {forced:.3}s, tax {:.3}x",
        fast / forced
    );
    assert!(
        fast <= forced * 1.05,
        "serial fast path {fast:.3}s exceeds 1.05x of the forced-shared kernel {forced:.3}s"
    );
}
