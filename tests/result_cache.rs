//! Soundness suite for the canonical-circuit result cache
//! (`sliq_exec::cache`): cached `run`/`sample` results must be bit-identical
//! to uncached simulation on every backend, hits must perform zero backend
//! simulation and zero histogram deep-copies, streamed / measured / restored
//! sessions must never be served stale entries, and the warm path must beat
//! the cold path by a wide margin (gated wall-clock test).

use sliqsim::prelude::*;
use std::sync::Arc;

/// A Clifford-only circuit every backend (including CHP) can run.
fn clifford_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
    }
    c.s(1).cz(0, n - 1).x(2).h(n - 1);
    c
}

/// A Clifford+T circuit for the three general backends.
fn clifford_t_circuit(n: usize) -> Circuit {
    let mut c = sliq_workloads::random::random_clifford_t(n, 7);
    c.t(0);
    c
}

fn session_with(
    circuit: &Circuit,
    backend: BackendKind,
    cache: Option<&Arc<ResultCache>>,
) -> Session {
    let mut session = Session::for_circuit(circuit, SessionConfig::with_backend(backend))
        .expect("supported circuit");
    if let Some(cache) = cache {
        session.attach_result_cache(cache.clone());
    }
    session
}

/// For every backend: an uncached run/sample, a cold cached run/sample (the
/// publisher) and a warm cached run/sample (a pure hit in a fresh session)
/// must agree bit for bit — total probability, per-qubit expectations and
/// the full histogram.
#[test]
fn cached_results_are_bit_identical_to_uncached_on_all_backends() {
    let shots = 2048u64;
    let seed = 17u64;
    for backend in BackendKind::ALL {
        let circuit = if backend == BackendKind::Stabilizer {
            clifford_circuit(8)
        } else {
            clifford_t_circuit(8)
        };
        let config = SessionConfig::with_backend(backend).expectations(true);
        let mut uncached = Session::for_circuit(&circuit, config).expect("supported");
        let reference_run = uncached.run(&circuit).expect("runs");
        let reference_sample = uncached.sample(shots, seed).expect("samples");

        let cache = ResultCache::shared(16 * 1024 * 1024);
        let mut cold = Session::for_circuit(&circuit, config).expect("supported");
        cold.attach_result_cache(cache.clone());
        let cold_run = cold.run(&circuit).expect("runs");
        let cold_sample = cold.sample(shots, seed).expect("samples");

        let mut warm = Session::for_circuit(&circuit, config).expect("supported");
        warm.attach_result_cache(cache.clone());
        let warm_run = warm.run(&circuit).expect("runs");
        let warm_sample = warm.sample(shots, seed).expect("samples");

        for (label, run) in [("cold", &cold_run), ("warm", &warm_run)] {
            assert_eq!(
                run.total_probability.to_bits(),
                reference_run.total_probability.to_bits(),
                "{backend}: {label} total probability must be bit-identical"
            );
            let expect = run.expectations_z.as_ref().expect("collected");
            let reference = reference_run.expectations_z.as_ref().expect("collected");
            assert_eq!(expect.len(), reference.len(), "{backend}");
            for (a, b) in expect.iter().zip(reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "{backend}: {label} ⟨Z⟩");
            }
            assert_eq!(run.gates_applied, reference_run.gates_applied, "{backend}");
            assert_eq!(run.backend, backend, "{backend}");
        }
        assert_eq!(
            cold_sample.histogram, reference_sample.histogram,
            "{backend}"
        );
        assert_eq!(
            warm_sample.histogram, reference_sample.histogram,
            "{backend}"
        );

        // Counter shape: one run miss + one run hit, one sample miss + one
        // sample hit.
        let stats = cache.stats();
        assert_eq!(stats.hits, 2, "{backend}: {stats:?}");
        assert_eq!(stats.misses, 2, "{backend}: {stats:?}");
        assert_eq!(stats.insertions, 2, "{backend}: {stats:?}");
    }
}

/// A warm `run` + `sample` must do **zero** backend simulation: on the
/// bit-sliced backend the kernel's node counter is the witness — the warm
/// session's manager must look exactly like a freshly opened (never-run)
/// session's.
#[test]
fn warm_hits_perform_zero_backend_simulation() {
    let circuit = clifford_t_circuit(10);
    let shots = 4096u64;
    let cache = ResultCache::shared(16 * 1024 * 1024);
    let mut cold = session_with(&circuit, BackendKind::BitSlice, Some(&cache));
    cold.run(&circuit).expect("runs");
    cold.sample(shots, 3).expect("samples");

    // Baseline: a session that never simulates anything.
    let idle = session_with(&circuit, BackendKind::BitSlice, None);
    let idle_nodes = idle.stats().bdd.expect("bitslice").created_nodes;

    let mut warm = session_with(&circuit, BackendKind::BitSlice, Some(&cache));
    let run = warm.run(&circuit).expect("hit");
    let sample = warm.sample(shots, 3).expect("hit");
    assert_eq!(sample.histogram.shots(), shots);
    let warm_nodes = warm.stats().bdd.expect("bitslice").created_nodes;
    assert_eq!(
        warm_nodes, idle_nodes,
        "a warm run+sample must not touch the BDD kernel"
    );
    // The hit is accounted on the cache, and the session's live stats
    // expose the counters through ExecStats.
    let stats = warm.stats().result_cache.expect("cache attached");
    assert_eq!(stats.hits, 2, "{stats:?}");
    // The returned result carries the publisher's gate count.
    assert_eq!(run.gates_applied, circuit.len());
    assert_eq!(warm.gates_applied(), circuit.len());
}

/// Cache hits must not deep-copy the histogram: every warm `sample` shares
/// the publisher's allocation behind `Arc`.
#[test]
fn sample_hits_share_the_histogram_allocation() {
    let circuit = clifford_t_circuit(8);
    let cache = ResultCache::shared(16 * 1024 * 1024);
    let mut cold = session_with(&circuit, BackendKind::BitSlice, Some(&cache));
    cold.run(&circuit).expect("runs");
    let published = cold.sample(1000, 5).expect("samples");

    let mut warm_a = session_with(&circuit, BackendKind::BitSlice, Some(&cache));
    warm_a.run(&circuit).expect("hit");
    let hit_a = warm_a.sample(1000, 5).expect("hit");
    let mut warm_b = session_with(&circuit, BackendKind::BitSlice, Some(&cache));
    warm_b.run(&circuit).expect("hit");
    let hit_b = warm_b.sample(1000, 5).expect("hit");

    assert!(
        Arc::ptr_eq(&published.histogram, &hit_a.histogram),
        "a hit must return the published allocation, not a copy"
    );
    assert!(Arc::ptr_eq(&hit_a.histogram, &hit_b.histogram));
    // Plain clones of a SampleResult share it too.
    let cloned = hit_a.clone();
    assert!(Arc::ptr_eq(&cloned.histogram, &hit_a.histogram));
}

/// Circuits written with redundant gate padding share entries: the key is
/// the canonical form, so a differently-written equivalent circuit hits.
#[test]
fn equivalent_circuits_share_cache_entries() {
    let mut plain = Circuit::new(4);
    plain.h(0).cx(0, 1).t(1).cx(1, 2).h(3);
    let mut padded = Circuit::new(4);
    padded
        .h(0)
        .x(2)
        .x(2)
        .cx(0, 1)
        .t(1)
        .tdg(1)
        .t(1)
        .cx(1, 2)
        .h(3)
        .s(3)
        .sdg(3);
    assert_eq!(circuit_fingerprint(&plain), circuit_fingerprint(&padded));

    let cache = ResultCache::shared(16 * 1024 * 1024);
    let mut first = session_with(&plain, BackendKind::BitSlice, Some(&cache));
    let a = first.run(&plain).expect("runs");
    let mut second = session_with(&padded, BackendKind::BitSlice, Some(&cache));
    let b = second.run(&padded).expect("hit");
    assert_eq!(cache.stats().hits, 1, "the padded circuit must hit");
    assert_eq!(a.total_probability.to_bits(), b.total_probability.to_bits());
}

/// Streaming sessions never consult the cache: after any `apply_gate` the
/// state is not `|0…0⟩`, so a later `run` must simulate honestly even when
/// a cached entry exists for that circuit.
#[test]
fn streamed_sessions_never_serve_cached_results() {
    let circuit = clifford_t_circuit(6);
    let cache = ResultCache::shared(16 * 1024 * 1024);
    let mut publisher = session_with(&circuit, BackendKind::BitSlice, Some(&cache));
    publisher.run(&circuit).expect("publishes");
    let hits_before = cache.stats().hits;

    // Honest reference: X(0) then the circuit, no cache anywhere.
    let mut reference = session_with(&circuit, BackendKind::BitSlice, None);
    reference.apply_gate(&Gate::X(0)).expect("applies");
    reference.run(&circuit).expect("runs");

    let mut streamed = session_with(&circuit, BackendKind::BitSlice, Some(&cache));
    streamed.apply_gate(&Gate::X(0)).expect("applies");
    let run = streamed.run(&circuit).expect("must simulate honestly");
    assert_eq!(cache.stats().hits, hits_before, "no lookup may have hit");
    for i in 0..(1u64 << 6) {
        let bits: Vec<bool> = (0..6).map(|q| i >> q & 1 == 1).collect();
        let a = streamed.probability_of_basis_state(&bits);
        let b = reference.probability_of_basis_state(&bits);
        assert_eq!(a.to_bits(), b.to_bits(), "outcome {i}");
    }
    // And the streamed session's sample reflects its true state.
    let streamed_sample = streamed.sample(1500, 9).expect("samples");
    let reference_sample = reference.sample(1500, 9).expect("samples");
    assert_eq!(streamed_sample.histogram, reference_sample.histogram);
    let _ = run;
}

/// Mutating a cached-run session (measurement collapse) must cut off sample
/// lookups: the post-measurement sample reflects the collapsed state, never
/// the memoised pre-measurement histogram.
#[test]
fn measurement_invalidates_sample_lookups() {
    let circuit = clifford_circuit(6);
    let cache = ResultCache::shared(16 * 1024 * 1024);
    let mut session = session_with(&circuit, BackendKind::BitSlice, Some(&cache));
    session.run(&circuit).expect("runs");
    let before = session.sample(2000, 21).expect("publishes");

    // Honest reference for the collapsed state.
    let mut reference = session_with(&circuit, BackendKind::BitSlice, None);
    reference.run(&circuit).expect("runs");
    let expected_outcome = reference.measure_with(0, 0.25);

    let outcome = session.measure_with(0, 0.25);
    assert_eq!(outcome, expected_outcome);
    let after = session.sample(2000, 21).expect("samples");
    let reference_after = reference.sample(2000, 21).expect("samples");
    assert_eq!(after.histogram, reference_after.histogram);
    assert_ne!(
        after.histogram, before.histogram,
        "the collapsed state must not be served the pre-measurement entry"
    );
}

/// `restore` resurrects exactly the cache eligibility captured with the
/// snapshot: a session restored to a post-`run` checkpoint may hit sample
/// entries again (the state provably matches), while a session restored
/// after streaming stays ineligible — no stale result is ever served.
#[test]
fn restore_tracks_cache_eligibility_with_the_state() {
    let circuit = clifford_t_circuit(8);
    let cache = ResultCache::shared(16 * 1024 * 1024);
    let mut session = session_with(&circuit, BackendKind::BitSlice, Some(&cache));
    session.run(&circuit).expect("runs");
    let checkpoint = session.snapshot();
    let reference = session.sample(1000, 4).expect("publishes");

    // Collapse, then roll back: the state is again exactly "run(C)", so the
    // sample lookup is sound — and must hit the shared allocation.
    session.measure_with(0, 0.5);
    session.restore(&checkpoint).expect("restores");
    let hits_before = cache.stats().hits;
    let replayed = session.sample(1000, 4).expect("hit");
    assert_eq!(cache.stats().hits, hits_before + 1);
    assert!(Arc::ptr_eq(&reference.histogram, &replayed.histogram));

    // A checkpoint taken mid-stream stays ineligible after restore.
    let mut streamed = session_with(&circuit, BackendKind::BitSlice, Some(&cache));
    streamed.apply_gate(&Gate::H(0)).expect("applies");
    let mid_stream = streamed.snapshot();
    streamed.apply_gate(&Gate::X(1)).expect("applies");
    streamed.restore(&mid_stream).expect("restores");
    let hits = cache.stats().hits;
    let misses = cache.stats().misses;
    streamed.run(&circuit).expect("must simulate honestly");
    assert_eq!(cache.stats().hits, hits, "no lookup");
    assert_eq!(cache.stats().misses, misses, "not even a counted miss");
    session.discard(checkpoint).expect("own snapshot");
    streamed.discard(mid_stream).expect("own snapshot");
}

/// A run hit leaves the backend unmaterialised; the first state query must
/// transparently replay the circuit and answer exactly like a cold session.
#[test]
fn lazy_materialisation_answers_state_queries_exactly() {
    let circuit = clifford_t_circuit(7);
    let cache = ResultCache::shared(16 * 1024 * 1024);
    let mut cold = session_with(&circuit, BackendKind::BitSlice, Some(&cache));
    cold.run(&circuit).expect("publishes");

    let mut warm = session_with(&circuit, BackendKind::BitSlice, Some(&cache));
    warm.run(&circuit).expect("hit");
    for q in 0..7 {
        assert_eq!(
            warm.probability_of_one(q).to_bits(),
            cold.probability_of_one(q).to_bits(),
            "qubit {q}"
        );
    }
    // Continuing to stream after a hit works on the materialised state.
    let mut warm2 = session_with(&circuit, BackendKind::BitSlice, Some(&cache));
    warm2.run(&circuit).expect("hit");
    warm2.apply_gate(&Gate::X(0)).expect("applies");
    let mut cold2 = session_with(&circuit, BackendKind::BitSlice, None);
    cold2.run(&circuit).expect("runs");
    cold2.apply_gate(&Gate::X(0)).expect("applies");
    let a = warm2.sample(1200, 13).expect("samples");
    let b = cold2.sample(1200, 13).expect("samples");
    assert_eq!(a.histogram, b.histogram);
}

/// Sessions with different result-affecting configuration must not share
/// entries: a smaller node budget or a different expectation flag is a
/// different key.
#[test]
fn result_affecting_config_partitions_the_key_space() {
    let circuit = clifford_t_circuit(8);
    let cache = ResultCache::shared(16 * 1024 * 1024);
    let base = SessionConfig::with_backend(BackendKind::BitSlice);

    let mut publisher = Session::for_circuit(&circuit, base).expect("supported");
    publisher.attach_result_cache(cache.clone());
    publisher.run(&circuit).expect("publishes");

    // Different max_nodes ⇒ miss (a hit would leave this session unable to
    // replay the circuit under its own budget).
    let mut budgeted = Session::for_circuit(&circuit, base.max_nodes(1_000_000)).expect("ok");
    budgeted.attach_result_cache(cache.clone());
    let hits = cache.stats().hits;
    budgeted.run(&circuit).expect("simulates");
    assert_eq!(cache.stats().hits, hits, "different budget must not hit");

    // Different expectations flag ⇒ miss (the payload differs).
    let mut expecting = Session::for_circuit(&circuit, base.expectations(true)).expect("ok");
    expecting.attach_result_cache(cache.clone());
    let hits = cache.stats().hits;
    let run = expecting.run(&circuit).expect("simulates");
    assert_eq!(cache.stats().hits, hits, "different payload must not hit");
    assert!(run.expectations_z.is_some());

    // Same config again ⇒ hit.
    let mut same = Session::for_circuit(&circuit, base).expect("ok");
    same.attach_result_cache(cache.clone());
    let hits = cache.stats().hits;
    same.run(&circuit).expect("hit");
    assert_eq!(cache.stats().hits, hits + 1);
}

/// A population larger than the byte budget keeps evicting and never
/// exceeds the budget, while the hottest entry keeps hitting.
#[test]
fn attached_cache_holds_its_byte_budget_under_pressure() {
    // Small budget: a handful of sample histograms at most.
    let cache = ResultCache::shared(24 * 1024);
    let hot = clifford_circuit(10);
    for round in 0..6u64 {
        // The hot circuit first — it stays recent through every round.
        let mut session = session_with(&hot, BackendKind::BitSlice, Some(&cache));
        session.run(&hot).expect("runs");
        session.sample(500, 1).expect("samples");
        assert!(cache.stats().bytes <= cache.capacity_bytes());
        // Then a cold circuit variant that pushes something out.
        let mut cold_circuit = Circuit::new(10);
        cold_circuit.h(0);
        for q in 0..10 {
            if round >> (q % 3) & 1 == 1 {
                cold_circuit.x(q);
            }
            cold_circuit.h(q);
        }
        cold_circuit.t(round as usize % 10);
        let mut session = session_with(&cold_circuit, BackendKind::BitSlice, Some(&cache));
        session.run(&cold_circuit).expect("runs");
        session.sample(500, 1).expect("samples");
        assert!(cache.stats().bytes <= cache.capacity_bytes());
    }
    let stats = cache.stats();
    assert!(stats.evictions > 0, "pressure must evict: {stats:?}");
    assert!(
        stats.hits > 0,
        "the hot circuit must keep hitting: {stats:?}"
    );
    assert!(stats.bytes <= stats.capacity_bytes);
}

/// Gated wall-clock acceptance (`SLIQ_PERF_TEST=1`, release profile): a
/// warm-cache replay of `random_clifford_t(16)` + 10k-shot sampling must be
/// at least 50× faster than the cold path.
#[test]
fn perf_warm_cache_replay_is_50x_cold() {
    if std::env::var_os("SLIQ_PERF_TEST").is_none() {
        eprintln!("skipped (set SLIQ_PERF_TEST=1 to run the wall-clock acceptance test)");
        return;
    }
    let circuit = sliq_workloads::random::random_clifford_t(16, 1);
    let shots = 10_000u64;
    let cache = ResultCache::shared(64 * 1024 * 1024);

    let cold_start = std::time::Instant::now();
    let mut cold = session_with(&circuit, BackendKind::BitSlice, Some(&cache));
    cold.run(&circuit).expect("runs");
    let cold_sample = cold.sample(shots, 2021).expect("samples");
    let cold_secs = cold_start.elapsed().as_secs_f64();

    // Median-of-3 warm replays, each the full serving shape (fresh session,
    // run, sample).
    let mut warm_times = Vec::new();
    let mut warm_histogram = None;
    for _ in 0..3 {
        let warm_start = std::time::Instant::now();
        let mut warm = session_with(&circuit, BackendKind::BitSlice, Some(&cache));
        warm.run(&circuit).expect("hit");
        let sample = warm.sample(shots, 2021).expect("hit");
        warm_times.push(warm_start.elapsed().as_secs_f64());
        warm_histogram = Some(sample.histogram);
    }
    warm_times.sort_by(|a, b| a.total_cmp(b));
    let warm_secs = warm_times[1].max(1e-9);
    assert_eq!(warm_histogram.unwrap(), cold_sample.histogram);
    let speedup = cold_secs / warm_secs;
    assert!(
        speedup >= 50.0,
        "warm replay must be >= 50x cold: cold {cold_secs:.4}s / warm {warm_secs:.6}s = {speedup:.1}x"
    );
}
