//! End-to-end scenarios exercising the headline capabilities of the paper:
//! exact simulation of large-but-structured circuits, the accuracy
//! advantage over floating-point decision diagrams, and the session layer's
//! batched sampling (many shots from one simulation).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sliqsim::circuit::Simulator;
use sliqsim::prelude::*;
use sliqsim::workloads::{algorithms, random, revlib_like};
use std::time::Instant;

#[test]
fn bernstein_vazirani_at_two_hundred_qubits_is_exact_and_fast() {
    // Far beyond the 30-qubit dense limit; the BDD state stays tiny.
    let data_qubits = 200;
    let secret: Vec<bool> = (0..data_qubits).map(|i| i % 3 != 0).collect();
    let circuit = algorithms::bernstein_vazirani(&secret);
    let mut sim = BitSliceSimulator::new(circuit.num_qubits());
    sim.run(&circuit).unwrap();
    for (q, &bit) in secret.iter().enumerate() {
        let p = sim.probability_of_one(q);
        assert!((p - if bit { 1.0 } else { 0.0 }).abs() < 1e-12, "qubit {q}");
    }
    assert!(sim.is_exactly_normalized());
    // The representation stays small: the state after BV is a basis state on
    // the data qubits tensored with |−⟩ on the ancilla.
    assert!(sim.node_count() < 2_000, "got {} nodes", sim.node_count());
}

#[test]
fn ghz_at_five_hundred_qubits_has_half_probability_everywhere() {
    let n = 500;
    let circuit = algorithms::ghz(n);
    let mut sim = BitSliceSimulator::new(n);
    sim.run(&circuit).unwrap();
    for q in [0, 1, n / 2, n - 1] {
        assert!((sim.probability_of_one(q) - 0.5).abs() < 1e-12);
    }
    assert!(sim.is_exactly_normalized());
    // Collapse the first qubit and verify the rest follow.
    let outcome = sim.measure_with(0, 0.1);
    assert!(outcome);
    assert!((sim.probability_of_one(n - 1) - 1.0).abs() < 1e-12);
}

#[test]
fn adder_in_superposition_encodes_every_sum_exactly() {
    let bits = 5;
    let bench = revlib_like::ripple_carry_adder(bits);
    let circuit = bench.with_superposition_inputs();
    let mut sim = BitSliceSimulator::new(circuit.num_qubits());
    sim.run(&circuit).unwrap();
    assert!(sim.is_exactly_normalized());
    // For a handful of (a, b) pairs, the amplitude of |a, a+b, 0⟩ must be
    // exactly (1/√2)^(2·bits) and the amplitude of any wrong sum must be 0.
    let free_inputs = bench.metadata.free_inputs().len();
    let expected = {
        let mut x = sliqsim::math::Algebraic::one();
        for _ in 0..free_inputs {
            x = x.div_sqrt2();
        }
        x
    };
    for (a, b) in [(0usize, 0usize), (7, 9), (31, 31), (12, 19)] {
        let sum = (a + b) & ((1 << bits) - 1);
        let mut witness = vec![false; circuit.num_qubits()];
        for i in 0..bits {
            witness[i] = a >> i & 1 == 1;
            witness[bits + i] = sum >> i & 1 == 1;
        }
        let amp = sim.amplitude(&witness);
        assert!(amp.value_eq(&expected), "a={a} b={b}: {amp}");
        // The carry ancilla is always uncomputed back to |0⟩: any basis state
        // with the ancilla set has exactly zero amplitude.
        let mut ancilla_set = witness.clone();
        ancilla_set[2 * bits] = true;
        assert!(sim.amplitude(&ancilla_set).is_zero());
    }
}

#[test]
fn deep_phase_circuit_stays_exact_while_remaining_normalised() {
    // 400 T gates and 200 Hadamards on 2 qubits: the kind of depth where
    // repeated floating-point rounding starts to show, yet the algebraic
    // state remains exactly normalised (integer identity).
    let mut circuit = Circuit::new(2);
    for i in 0..200 {
        circuit.h(i % 2);
        circuit.t(i % 2);
        circuit.t((i + 1) % 2);
        if i % 3 == 0 {
            circuit.cx(0, 1);
        }
    }
    let mut sim = BitSliceSimulator::new(2);
    sim.run(&circuit).unwrap();
    assert!(sim.is_exactly_normalized());
    assert!((sim.total_probability() - 1.0).abs() < 1e-12);
    // Each Hadamard increments k; common powers of two are factored back out
    // of the coefficients, so k never exceeds the Hadamard count.
    assert!(sim.k() <= 200 && sim.k() >= 0, "k = {}", sim.k());

    // The QMDD baseline still gets the probabilities approximately right on
    // this small case, but only approximately — its Σp is no longer an exact
    // integer identity.
    let mut qmdd = QmddSimulator::new(2);
    qmdd.run(&circuit).unwrap();
    assert!((qmdd.total_probability() - 1.0).abs() < 1e-6);
}

#[test]
fn facade_prelude_exposes_every_backend() {
    let mut circuit = Circuit::new(2);
    circuit.h(0).cx(0, 1);
    let mut backends: Vec<Box<dyn Simulator>> = vec![
        Box::new(BitSliceSimulator::new(2)),
        Box::new(DenseSimulator::new(2)),
        Box::new(QmddSimulator::new(2)),
        Box::new(StabilizerSimulator::new(2)),
    ];
    for backend in backends.iter_mut() {
        backend.run(&circuit).unwrap();
        assert!(
            (backend.probability_of_one(1) - 0.5).abs() < 1e-9,
            "{}",
            backend.name()
        );
    }
}

/// Measures the wall-clock cost of drawing one shot by full re-simulation
/// (fresh simulator + run + collapse), the pre-session way of sampling.
fn resimulation_secs_per_shot(circuit: &Circuit, shots: usize, rng: &mut StdRng) -> f64 {
    let n = circuit.num_qubits();
    let start = Instant::now();
    for _ in 0..shots {
        let mut sim = BitSliceSimulator::new(n);
        sim.run(circuit).unwrap();
        let us: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let _ = sim.state_mut().measure_all_collapsing(&us);
    }
    start.elapsed().as_secs_f64() / shots as f64
}

#[test]
fn batched_sampling_beats_resimulation_by_10x_per_shot() {
    // The acceptance bar scaled to debug-test size: batched Session::sample
    // must be ≥ 10× cheaper per shot than sequential re-simulation on a
    // random Clifford+T workload (the release-mode rc_t(16)/10k-shot
    // numbers live in CHANGES.md; see the SLIQ_PERF_TEST variant below).
    let circuit = random::random_clifford_t(12, 3);
    let mut rng = StdRng::seed_from_u64(1);
    let resim_per_shot = resimulation_secs_per_shot(&circuit, 4, &mut rng);
    let mut session =
        Session::for_circuit(&circuit, SessionConfig::with_backend(BackendKind::BitSlice)).unwrap();
    session.run(&circuit).unwrap();
    let shots = 4000u64;
    let start = Instant::now();
    let sample = session.sample(shots, 1).unwrap();
    let batched_per_shot = start.elapsed().as_secs_f64() / shots as f64;
    assert_eq!(sample.histogram.shots(), shots);
    assert!(
        batched_per_shot * 10.0 <= resim_per_shot,
        "batched sampling must be ≥ 10× faster per shot: \
         {batched_per_shot:.2e}s batched vs {resim_per_shot:.2e}s resimulated"
    );
}

#[test]
fn acceptance_rc_t16_10k_shots_at_least_10x_faster() {
    // The full acceptance measurement (release-sized); run explicitly with
    //   SLIQ_PERF_TEST=1 cargo test --release acceptance_rc_t16
    if std::env::var_os("SLIQ_PERF_TEST").is_none() {
        return;
    }
    let circuit = random::random_clifford_t(16, 1);
    let mut rng = StdRng::seed_from_u64(1);
    let resim_per_shot = resimulation_secs_per_shot(&circuit, 20, &mut rng);
    let mut session =
        Session::for_circuit(&circuit, SessionConfig::with_backend(BackendKind::BitSlice)).unwrap();
    session.run(&circuit).unwrap();
    let start = Instant::now();
    let sample = session.sample(10_000, 1).unwrap();
    let batched = start.elapsed().as_secs_f64();
    let equivalent_resim = resim_per_shot * 10_000.0;
    println!(
        "rc_t(16), 10k shots: batched {batched:.3}s vs {equivalent_resim:.1}s resimulated \
         ({:.0}x, {:.0} shots/s, {} distinct outcomes)",
        equivalent_resim / batched,
        10_000.0 / batched,
        sample.histogram.counts().len()
    );
    assert!(batched * 10.0 <= equivalent_resim);
}

#[test]
fn session_checkpoint_survives_further_gates_and_sampling() {
    // One session serves interleaved strong and weak simulation: run a
    // prefix, checkpoint, extend the circuit, sample, roll back, and verify
    // the prefix state returns bit-exactly.
    let mut prefix = Circuit::new(4);
    prefix.h(0).cx(0, 1).t(1).cx(1, 2).h(3);
    let mut session = Session::for_circuit(&prefix, SessionConfig::default()).unwrap();
    session.run(&prefix).unwrap();
    let p_before: Vec<f64> = (0..4).map(|q| session.probability_of_one(q)).collect();
    let checkpoint = session.snapshot();
    let mut suffix = Circuit::new(4);
    suffix.cx(2, 3).t(3).h(2).s(0);
    session.run(&suffix).unwrap();
    let _ = session.sample(500, 8).unwrap();
    let outcome = session.measure_with(0, 0.4);
    let _ = outcome;
    session.restore(&checkpoint).unwrap();
    session.discard(checkpoint).unwrap();
    for (q, &expected) in p_before.iter().enumerate() {
        let p = session.probability_of_one(q);
        assert!(
            (p - expected).abs() < 1e-12,
            "qubit {q}: {p} after restore vs {expected}"
        );
    }
    assert_eq!(session.gates_applied(), prefix.len());
}

#[test]
fn measurement_order_does_not_change_joint_statistics() {
    // Paper §III-E: "when some qubits are to be measured, the order of
    // measuring them is immaterial."
    let mut circuit = Circuit::new(3);
    circuit.h(0).cx(0, 1).t(1).h(2).cz(0, 2);
    let draws = [0.3, 0.7, 0.2];
    let run_order = |order: [usize; 3]| {
        let mut sim = BitSliceSimulator::new(3);
        sim.run(&circuit).unwrap();
        let mut outcome = [false; 3];
        for &q in &order {
            outcome[q] = sim.measure_with(q, draws[q]);
        }
        outcome
    };
    // Joint probabilities are invariant under measurement order, therefore
    // probabilities of each outcome combination must agree; we check the
    // weaker but deterministic statement that the marginal probability of
    // qubit 2 before any measurement equals the probability derived from the
    // joint distribution in either order.
    let mut sim = BitSliceSimulator::new(3);
    sim.run(&circuit).unwrap();
    let p2 = sim.probability_of_one(2);
    let mut joint_p2 = 0.0;
    for basis in 0..8usize {
        let bits: Vec<bool> = (0..3).map(|q| basis >> q & 1 == 1).collect();
        if bits[2] {
            joint_p2 += sim.probability_of_basis_state(&bits);
        }
    }
    assert!((p2 - joint_p2).abs() < 1e-9);
    // And the two concrete orders must both produce valid collapsed states.
    let _ = run_order([0, 1, 2]);
    let _ = run_order([2, 1, 0]);
}
