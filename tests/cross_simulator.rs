//! Workspace-level integration tests: all backends must agree with one
//! another on every workload family, driven solely through the public facade.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sliqsim::circuit::Simulator;
use sliqsim::prelude::*;
use sliqsim::workloads::{algorithms, random, revlib_like, supremacy};

fn all_basis_states(n: usize) -> impl Iterator<Item = Vec<bool>> {
    (0..(1usize << n)).map(move |i| (0..n).map(|q| i >> q & 1 == 1).collect())
}

/// Runs a circuit on the bit-sliced, QMDD and dense backends and checks that
/// every amplitude agrees.
fn assert_backends_agree(circuit: &Circuit) {
    let n = circuit.num_qubits();
    assert!(n <= 12, "oracle comparison only for small circuits");
    let mut dense = DenseSimulator::new(n);
    let mut qmdd = QmddSimulator::new(n);
    let mut bitslice = BitSliceSimulator::new(n);
    dense.run(circuit).unwrap();
    qmdd.run(circuit).unwrap();
    bitslice.run(circuit).unwrap();
    for bits in all_basis_states(n) {
        let reference = dense.amplitude(&bits);
        let from_qmdd = qmdd.amplitude(&bits);
        let from_bitslice = bitslice.amplitude(&bits).to_complex();
        assert!(
            reference.approx_eq(&from_qmdd, 1e-6),
            "qmdd deviates on {bits:?}: {reference} vs {from_qmdd}"
        );
        assert!(
            reference.approx_eq(&from_bitslice, 1e-9),
            "bitslice deviates on {bits:?}: {reference} vs {from_bitslice}"
        );
    }
    assert!(bitslice.is_exactly_normalized());
}

#[test]
fn random_clifford_t_circuits_agree_across_backends() {
    for seed in 0..6 {
        let circuit = random::random_circuit(
            &random::RandomCircuitConfig {
                num_qubits: 6,
                num_gates: 30,
                initial_hadamard_layer: true,
                gate_set: random::RandomGateSet::PaperTable3,
            },
            seed,
        );
        assert_backends_agree(&circuit);
    }
}

#[test]
fn full_gate_set_circuits_agree_across_backends() {
    for seed in 0..4 {
        let circuit = random::random_circuit(
            &random::RandomCircuitConfig {
                num_qubits: 5,
                num_gates: 40,
                initial_hadamard_layer: false,
                gate_set: random::RandomGateSet::Full,
            },
            100 + seed,
        );
        assert_backends_agree(&circuit);
    }
}

#[test]
fn clifford_circuits_also_agree_with_the_stabilizer_backend() {
    for seed in 0..5 {
        let circuit = random::random_circuit(
            &random::RandomCircuitConfig {
                num_qubits: 6,
                num_gates: 40,
                initial_hadamard_layer: true,
                gate_set: random::RandomGateSet::CliffordOnly,
            },
            200 + seed,
        );
        let mut stab = StabilizerSimulator::new(6);
        let mut bitslice = BitSliceSimulator::new(6);
        stab.run(&circuit).unwrap();
        bitslice.run(&circuit).unwrap();
        for q in 0..6 {
            let ps = stab.probability_of_one(q);
            let pb = bitslice.probability_of_one(q);
            assert!(
                (ps - pb).abs() < 1e-9,
                "seed {seed} qubit {q}: {ps} vs {pb}"
            );
        }
    }
}

#[test]
fn parallel_bitslice_agrees_with_the_dense_oracle_at_every_thread_count() {
    // The cross-backend flavour of the parallel differential suite: the
    // fan-out width must be unobservable not just against the serial
    // bit-sliced path but against an independent oracle too.
    for seed in 0..3 {
        let circuit = random::random_circuit(
            &random::RandomCircuitConfig {
                num_qubits: 6,
                num_gates: 36,
                initial_hadamard_layer: true,
                gate_set: random::RandomGateSet::PaperTable3,
            },
            300 + seed,
        );
        let mut dense = DenseSimulator::new(6);
        dense.run(&circuit).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let mut bitslice = BitSliceSimulator::new(6).with_threads(threads);
            bitslice.run(&circuit).unwrap();
            bitslice
                .state()
                .manager()
                .check_integrity()
                .unwrap_or_else(|e| panic!("seed {seed}, {threads} threads: {e}"));
            for bits in all_basis_states(6) {
                let reference = dense.amplitude(&bits);
                let ours = bitslice.amplitude(&bits).to_complex();
                assert!(
                    reference.approx_eq(&ours, 1e-9),
                    "seed {seed}, {threads} threads deviate on {bits:?}"
                );
            }
            assert!(bitslice.is_exactly_normalized());
        }
    }
}

#[test]
fn supremacy_circuits_agree_on_a_small_lattice() {
    let lattice = supremacy::Lattice::new(3, 3);
    for seed in 0..3 {
        let circuit = supremacy::supremacy_circuit(lattice, 5, seed);
        assert_backends_agree(&circuit);
    }
}

#[test]
fn revlib_like_benchmarks_agree_with_and_without_superposition() {
    let bench = revlib_like::ripple_carry_adder(3);
    assert_backends_agree(&bench.circuit);
    assert_backends_agree(&bench.with_superposition_inputs());
    let cmp = revlib_like::equality_comparator(3);
    assert_backends_agree(&cmp.with_superposition_inputs());
}

#[test]
fn ghz_and_bv_agree_with_the_oracle() {
    assert_backends_agree(&algorithms::ghz(8));
    assert_backends_agree(&algorithms::bernstein_vazirani(&[
        true, false, true, true, false, true, false,
    ]));
}

#[test]
fn sampling_distributions_match_between_bitslice_and_dense() {
    // Sample repeatedly from the same 3-qubit state on both backends using
    // identical random draws; the outcomes must match draw-for-draw.
    let mut circuit = Circuit::new(3);
    circuit.h(0).t(0).h(1).cx(1, 2).s(2).h(2);
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..20 {
        let us: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut dense = DenseSimulator::new(3);
        dense.run(&circuit).unwrap();
        let mut bitslice = BitSliceSimulator::new(3);
        bitslice.run(&circuit).unwrap();
        let dense_sample: Vec<bool> = (0..3).map(|q| dense.measure_with(q, us[q])).collect();
        let bitslice_sample: Vec<bool> = (0..3).map(|q| bitslice.measure_with(q, us[q])).collect();
        assert_eq!(dense_sample, bitslice_sample);
    }
}

#[test]
fn batched_sampling_histograms_identical_across_all_four_backends() {
    // A 4-qubit Clifford circuit: every outcome probability is dyadic
    // (0 or 2^-k), so all four backends compute bit-identical conditional
    // probabilities and the shared-seed descent produces the exact same
    // histogram — per-outcome frequency equality, not just statistical
    // agreement.
    let mut circuit = Circuit::new(4);
    circuit.h(0).cx(0, 1).h(2).cx(2, 3).cx(1, 2).s(3).z(0);
    let shots = 10_000;
    let seed = 99;
    let mut histograms = Vec::new();
    for kind in BackendKind::ALL {
        let mut session = Session::for_circuit(&circuit, SessionConfig::with_backend(kind))
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        session.run(&circuit).unwrap();
        let sample = session.sample(shots, seed).unwrap();
        assert_eq!(sample.histogram.shots(), shots, "{kind}");
        histograms.push((kind, sample.histogram));
    }
    let (first_kind, reference) = &histograms[0];
    for (kind, histogram) in &histograms[1..] {
        assert_eq!(
            histogram, reference,
            "histogram of {kind} deviates from {first_kind} under the shared seed"
        );
    }
    // And the shared histogram matches the exact distribution: frequencies
    // within 5σ of the dense-oracle probabilities.
    let mut dense = DenseSimulator::new(4);
    dense.run(&circuit).unwrap();
    for outcome in 0..16u64 {
        let bits: Vec<bool> = (0..4).map(|q| outcome >> q & 1 == 1).collect();
        let p = dense.probability_of_basis_state(&bits);
        let sigma = (p * (1.0 - p) / shots as f64).sqrt();
        let observed = reference.frequency(outcome);
        assert!(
            (observed - p).abs() <= 5.0 * sigma + 1e-12,
            "outcome {outcome:04b}: frequency {observed} vs probability {p}"
        );
    }
}

#[test]
fn ghz_sampling_chi_square_sanity_at_10k_shots() {
    let circuit = algorithms::ghz(4);
    // Auto routes the Clifford-only GHZ circuit to the stabilizer backend.
    let mut session = Session::for_circuit(&circuit, SessionConfig::default()).unwrap();
    assert_eq!(session.kind(), BackendKind::Stabilizer);
    session.run(&circuit).unwrap();
    let sample = session.sample(10_000, 2021).unwrap();
    let hist = &sample.histogram;
    // Only the two GHZ outcomes ever occur.
    assert_eq!(hist.count_of(0b0000) + hist.count_of(0b1111), 10_000);
    // χ² against the exact half/half distribution, 1 degree of freedom:
    // values above ~11 have p < 0.001; the seeded draw is deterministic, so
    // this can never flake.
    let chi = hist.chi_square(|o| if o == 0b0000 || o == 0b1111 { 0.5 } else { 0.0 });
    assert!(chi.is_finite() && chi < 11.0, "χ² = {chi}");
}

#[test]
fn bernstein_vazirani_sampling_chi_square_at_10k_shots() {
    let secret = [true, false, true, true, false];
    let circuit = algorithms::bernstein_vazirani(&secret);
    let n = circuit.num_qubits();
    // Pin the bit-sliced backend: this exercises the non-collapsing
    // conditional-probability descent over the BDD state.
    let mut session =
        Session::for_circuit(&circuit, SessionConfig::with_backend(BackendKind::BitSlice)).unwrap();
    session.run(&circuit).unwrap();
    let sample = session.sample(10_000, 2021).unwrap();
    let hist = &sample.histogram;
    // Data qubits are deterministic (the secret); only the |−⟩ ancilla is
    // uniform, so exactly two outcomes occur.
    let secret_word = secret
        .iter()
        .enumerate()
        .fold(0u64, |acc, (q, &b)| acc | (u64::from(b) << q));
    let ancilla = 1u64 << (n - 1);
    assert_eq!(
        hist.count_of(secret_word) + hist.count_of(secret_word | ancilla),
        10_000
    );
    let chi = hist.chi_square(|o| {
        if o & !ancilla == secret_word {
            0.5
        } else {
            0.0
        }
    });
    assert!(chi.is_finite() && chi < 11.0, "χ² = {chi}");
    // Sampling is non-collapsing: the session state is still the full BV
    // output superposition.
    assert!((session.probability_of_one(n - 1) - 0.5).abs() < 1e-12);
}

#[test]
fn batched_sampling_matches_the_exact_distribution_on_non_dyadic_states() {
    // T gates make the outcome probabilities irrational — the backends may
    // legitimately differ in the last ulp here, so the check is statistical
    // (5σ per outcome) rather than bit-exact, on both exact backends.
    let mut circuit = Circuit::new(3);
    circuit.h(0).t(0).h(0).h(1).cx(1, 2).t(2).h(2);
    let shots = 20_000u64;
    let mut dense = DenseSimulator::new(3);
    dense.run(&circuit).unwrap();
    for kind in [BackendKind::BitSlice, BackendKind::Qmdd] {
        let mut session =
            Session::for_circuit(&circuit, SessionConfig::with_backend(kind)).unwrap();
        session.run(&circuit).unwrap();
        let sample = session.sample(shots, 5).unwrap();
        for outcome in 0..8u64 {
            let bits: Vec<bool> = (0..3).map(|q| outcome >> q & 1 == 1).collect();
            let p = dense.probability_of_basis_state(&bits);
            let sigma = (p * (1.0 - p) / shots as f64).sqrt();
            assert!(
                (sample.histogram.frequency(outcome) - p).abs() <= 5.0 * sigma + 1e-9,
                "{kind}, outcome {outcome:03b}"
            );
        }
    }
}

#[test]
fn peephole_optimization_preserves_the_state() {
    for seed in 0..5 {
        let circuit = random::random_circuit(
            &random::RandomCircuitConfig {
                num_qubits: 5,
                num_gates: 60,
                initial_hadamard_layer: true,
                gate_set: random::RandomGateSet::Full,
            },
            300 + seed,
        );
        let (optimized, stats) = sliqsim::circuit::optimize(&circuit);
        assert!(optimized.len() <= circuit.len());
        let mut reference = DenseSimulator::new(5);
        reference.run(&circuit).unwrap();
        let mut pruned = DenseSimulator::new(5);
        pruned.run(&optimized).unwrap();
        for bits in all_basis_states(5) {
            assert!(
                reference
                    .amplitude(&bits)
                    .approx_eq(&pruned.amplitude(&bits), 1e-9),
                "seed {seed}, basis {bits:?}, removed {} merged {}",
                stats.cancelled,
                stats.merged
            );
        }
    }
}

#[test]
fn grover_search_agrees_across_backends() {
    let marked = [true, false, true, true];
    let circuit = sliqsim::workloads::grover::grover_optimal(&marked);
    assert_backends_agree(&circuit);
    let mut sim = BitSliceSimulator::new(marked.len());
    sim.run(&circuit).unwrap();
    assert!(sim.probability_of_basis_state(&marked) > 0.9);
}

#[test]
fn qasm_round_trip_simulates_identically() {
    let circuit = random::random_clifford_t(6, 99);
    let text = sliqsim::circuit::qasm::emit(&circuit);
    let parsed = sliqsim::circuit::qasm::parse(&text).unwrap();
    assert_eq!(parsed, circuit);
    assert_backends_agree(&parsed);
}
