//! Dynamic-circuit correctness across every backend: mid-circuit
//! measurement, classical feed-forward and reset must produce *identical*
//! seeded trajectories on every backend that supports them, and the result
//! cache must never serve a dynamic run recorded under one measurement
//! seed to a session running under another.

use sliqsim::exec::dynamic_fingerprint;
use sliqsim::prelude::*;
use std::sync::Arc;

/// Standard teleportation of a 1-qubit payload from q0 to q2, with the
/// payload preparation supplied by the caller: Bell pair on (q1, q2), Bell
/// measurement of (q0, q1) into (c0, c1), feed-forward corrections on q2.
fn teleport(prepare: impl FnOnce(&mut Circuit)) -> Circuit {
    let mut c = Circuit::with_clbits(3, 2);
    prepare(&mut c);
    c.h(1)
        .cx(1, 2)
        .cx(0, 1)
        .h(0)
        .measure(0, 0)
        .measure(1, 1)
        .if_bit(1, Gate::X(2))
        .if_bit(0, Gate::Z(2));
    c
}

/// A repeat-until-success-shaped circuit, unrolled to two rounds: each
/// round entangles an ancilla with the work qubit, measures it, and on the
/// failure outcome resets the ancilla and conditionally repairs the work
/// qubit before retrying.
fn repeat_until_success() -> Circuit {
    let mut c = Circuit::with_clbits(2, 2);
    for round in 0..2 {
        c.h(0).cx(0, 1).measure(1, round).reset(1);
        c.if_bit(round, Gate::X(0));
    }
    c
}

fn session_for(kind: BackendKind, seed: u64) -> SessionConfig {
    SessionConfig::with_backend(kind)
        .threads(1)
        .measurement_seed(seed)
}

fn run_on(kind: BackendKind, circuit: &Circuit, seed: u64) -> (Session, RunResult) {
    let mut session =
        Session::for_circuit(circuit, session_for(kind, seed)).expect("session opens");
    let result = session.run(circuit).expect("dynamic run completes");
    (session, result)
}

#[test]
fn teleportation_of_a_basis_state_agrees_on_all_four_backends() {
    // Payload |1⟩: the teleported state is |1⟩ on q2 for every possible
    // measurement outcome, so this checks both the seeded readout and the
    // feed-forward corrections on every backend.
    let circuit = teleport(|c| {
        c.x(0);
    });
    assert!(circuit.is_clifford(), "teleporting |1⟩ is Clifford");
    for seed in [0u64, 1, 7, 42, 1234] {
        let mut readouts = Vec::new();
        for kind in BackendKind::ALL {
            let (mut session, result) = run_on(kind, &circuit, seed);
            let readout = result
                .readout
                .clone()
                .expect("dynamic runs carry a readout");
            assert_eq!(readout.len(), 2, "{kind}: two clbits");
            assert!(
                (session.probability_of_one(2) - 1.0).abs() < 1e-9,
                "{kind}, seed {seed}: q2 must hold the teleported |1⟩"
            );
            assert!(
                (result.total_probability - 1.0).abs() < 1e-9,
                "{kind}: collapse must renormalise"
            );
            readouts.push((kind, readout));
        }
        let (_, reference) = &readouts[0];
        for (kind, readout) in &readouts[1..] {
            assert_eq!(
                readout, reference,
                "{kind} disagrees with {} on the seed-{seed} readout",
                readouts[0].0
            );
        }
    }
}

#[test]
fn non_clifford_teleportation_matches_across_the_universal_backends() {
    // Payload T·H|0⟩ is non-Clifford, so the stabilizer sits this one out;
    // the three universal backends must still walk identical seeded
    // trajectories and leave q2 in the same state.
    let circuit = teleport(|c| {
        c.h(0).t(0);
    });
    assert!(!circuit.is_clifford());
    let universal = [BackendKind::BitSlice, BackendKind::Qmdd, BackendKind::Dense];
    for seed in [3u64, 8, 21] {
        let mut outcomes = Vec::new();
        for kind in universal {
            let (mut session, result) = run_on(kind, &circuit, seed);
            let p1 = session.probability_of_one(2);
            let histogram = session
                .sample(2048, seed)
                .expect("sampling the teleported state")
                .histogram;
            outcomes.push((kind, result.readout.unwrap(), p1, histogram));
        }
        let (_, ref readout, p1, ref histogram) = outcomes[0];
        for (kind, other_readout, other_p1, other_histogram) in &outcomes[1..] {
            assert_eq!(other_readout, readout, "{kind}: readout, seed {seed}");
            assert!(
                (other_p1 - p1).abs() < 1e-9,
                "{kind}: teleported amplitude, seed {seed}"
            );
            assert_eq!(
                other_histogram, histogram,
                "{kind}: seeded histogram, seed {seed}"
            );
        }
        // T·H|0⟩ has Pr[1] = sin²(π/8) + … = ½ exactly (the T phase does
        // not move populations), teleported faithfully.
        assert!((p1 - 0.5).abs() < 1e-9);
    }
}

#[test]
fn repeat_until_success_rounds_agree_and_resets_clear_the_ancilla() {
    let circuit = repeat_until_success();
    for seed in 0..8u64 {
        let mut readouts = Vec::new();
        for kind in BackendKind::ALL {
            let (mut session, result) = run_on(kind, &circuit, seed);
            assert!(
                session.probability_of_one(1) < 1e-9,
                "{kind}, seed {seed}: the final reset must leave the ancilla in |0⟩"
            );
            readouts.push((kind, result.readout.unwrap()));
        }
        for (kind, readout) in &readouts[1..] {
            assert_eq!(readout, &readouts[0].1, "{kind} diverges at seed {seed}");
        }
    }
}

#[test]
fn dynamic_runs_are_deterministic_in_the_seed_and_vary_across_seeds() {
    let circuit = teleport(|c| {
        c.h(0).t(0);
    });
    let (_, first) = run_on(BackendKind::BitSlice, &circuit, 11);
    let (_, again) = run_on(BackendKind::BitSlice, &circuit, 11);
    assert_eq!(first.readout, again.readout, "same seed ⇒ same trajectory");
    // Bell measurement outcomes are uniform over 4 possibilities, so some
    // nearby seed must take a different trajectory.
    let reference = first.readout.unwrap();
    let diverged = (0..64u64).any(|seed| {
        let (_, result) = run_on(BackendKind::BitSlice, &circuit, seed);
        result.readout.unwrap() != reference
    });
    assert!(diverged, "64 seeds with identical Bell outcomes");
}

#[test]
fn result_cache_keys_dynamic_runs_by_measurement_seed() {
    // One coin-flip measurement: the readout is exactly the trajectory, so
    // a stale cache hit across seeds would be directly visible.
    let mut circuit = Circuit::with_clbits(1, 1);
    circuit.h(0).measure(0, 0);

    // Find two seeds whose trajectories differ.
    let readout_for = |seed: u64| {
        let (_, result) = run_on(BackendKind::BitSlice, &circuit, seed);
        result.readout.unwrap()[0]
    };
    let seed_one = (0..64u64)
        .find(|&s| readout_for(s))
        .expect("a 1-readout seed");
    let seed_zero = (0..64u64)
        .find(|&s| !readout_for(s))
        .expect("a 0-readout seed");

    let fingerprint = circuit_fingerprint(&circuit);
    assert_ne!(
        dynamic_fingerprint(fingerprint, seed_one),
        dynamic_fingerprint(fingerprint, seed_zero),
        "seeds must key distinct cache entries"
    );

    let cache = Arc::new(ResultCache::new(1 << 20));
    let run_cached = |seed: u64| {
        let mut session = Session::for_circuit(&circuit, session_for(BackendKind::BitSlice, seed))
            .expect("session opens");
        session.attach_result_cache(Arc::clone(&cache));
        let result = session.run(&circuit).expect("run completes");
        (session, result)
    };

    // Publish under seed_one, then run under seed_zero: the second run
    // must NOT be served the first run's outcome.
    let (_, published) = run_cached(seed_one);
    assert_eq!(published.readout, Some(vec![true]));
    let misses_before = cache.stats().misses;
    let (_, other) = run_cached(seed_zero);
    assert_eq!(
        other.readout,
        Some(vec![false]),
        "a dynamic run must never see another seed's cached outcome"
    );
    assert!(
        cache.stats().misses > misses_before,
        "cross-seed lookup must miss"
    );

    // Same seed again: now a hit is sound, and the lazily-replayed state
    // must match the cached readout bit-for-bit.
    let hits_before = cache.stats().hits;
    let (mut replayed, hit) = run_cached(seed_one);
    assert_eq!(hit.readout, Some(vec![true]));
    assert!(
        cache.stats().hits > hits_before,
        "same-seed lookup must hit"
    );
    assert!(
        (replayed.probability_of_one(0) - 1.0).abs() < 1e-9,
        "cache-hit replay must reproduce the published trajectory"
    );
}

#[test]
fn sampling_after_a_dynamic_run_is_cross_backend_identical() {
    // After measuring one half of a Bell pair the state is classical; the
    // batched sampler must agree with the readout on every backend.
    let mut circuit = Circuit::with_clbits(2, 1);
    circuit.h(0).cx(0, 1).measure(0, 0);
    for seed in [2u64, 5, 13] {
        let mut histograms = Vec::new();
        for kind in BackendKind::ALL {
            let (mut session, result) = run_on(kind, &circuit, seed);
            let bit = result.readout.unwrap()[0];
            let sample = session.sample(256, seed).expect("sampling works");
            let expected_outcome = if bit { 0b11 } else { 0b00 };
            assert_eq!(
                sample.histogram.count_of(expected_outcome),
                256,
                "{kind}, seed {seed}: collapsed Bell pair has one outcome"
            );
            histograms.push((kind, sample.histogram));
        }
        for (kind, histogram) in &histograms[1..] {
            assert_eq!(histogram, &histograms[0].1, "{kind} histogram, seed {seed}");
        }
    }
}

mod remote {
    //! End-to-end: a QASM program with `measure` and feed-forward runs
    //! through a live `sliq-serve` over the wire protocol and returns the
    //! same seeded readout as direct `Session` execution — on more than one
    //! backend.  Before dynamic circuits existed these statements were the
    //! silently-ignored kind, so this is also the regression test that
    //! nothing on the serving path drops them.

    use super::*;
    use sliqsim::serve::{Client, RetryPolicy, RunOptions, Server, ServerConfig};

    const TELEPORT_QASM: &str = r#"
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[3];
        creg c[2];
        x q[0];
        h q[1];
        cx q[1], q[2];
        cx q[0], q[1];
        h q[0];
        measure q[0] -> c[0];
        measure q[1] -> c[1];
        if (c[1] == 1) x q[2];
        if (c[0] == 1) z q[2];
    "#;

    #[test]
    fn remote_dynamic_qasm_matches_local_sessions_on_multiple_backends() {
        let handle = Server::bind(
            "127.0.0.1:0",
            ServerConfig::default().workers(2).session_threads(1),
        )
        .expect("bind")
        .spawn()
        .expect("spawn");
        let addr = handle.addr();
        let circuit = sliqsim::circuit::qasm::parse(TELEPORT_QASM).expect("teleport parses");
        assert!(circuit.is_dynamic(), "measure/if must reach the IR");

        let mut client = Client::connect(addr).expect("client connects");
        for backend in [
            BackendKind::Auto,
            BackendKind::BitSlice,
            BackendKind::Stabilizer,
            BackendKind::Dense,
        ] {
            for seed in [0u64, 5, 19] {
                let outcome = client
                    .run_qasm_with_retry(
                        TELEPORT_QASM,
                        &RunOptions {
                            backend,
                            shots: 128,
                            seed,
                            ..RunOptions::default()
                        },
                        &RetryPolicy::default(),
                    )
                    .expect("remote dynamic run completes");

                // Local reference under the identical configuration.
                let config = SessionConfig::with_backend(backend)
                    .threads(1)
                    .measurement_seed(seed);
                let mut session =
                    Session::for_circuit(&circuit, config).expect("local session opens");
                let local = session.run(&circuit).expect("local run completes");
                let local_sample = session.sample(128, seed).expect("local sampling");

                assert_eq!(outcome.backend, local.backend, "{backend}, seed {seed}");
                assert_eq!(
                    outcome.readout.as_deref(),
                    local.readout.as_deref(),
                    "{backend}, seed {seed}: remote and local readouts must agree"
                );
                assert_eq!(
                    outcome.total_probability.to_bits(),
                    local.total_probability.to_bits(),
                    "{backend}, seed {seed}"
                );
                let histogram = outcome.histogram.expect("shots were requested");
                let local_counts: Vec<(u64, u64)> = local_sample
                    .histogram
                    .counts()
                    .iter()
                    .map(|(&o, &n)| (o, n))
                    .collect();
                assert_eq!(histogram.counts, local_counts, "{backend}, seed {seed}");
                // Teleported |1⟩: every shot ends with q2 = 1.
                let teleported: u64 = histogram
                    .counts
                    .iter()
                    .filter(|(outcome, _)| outcome & 0b100 != 0)
                    .map(|(_, count)| count)
                    .sum();
                assert_eq!(teleported, 128, "{backend}, seed {seed}");
            }
        }
        handle.shutdown();
    }

    #[test]
    fn unparseable_statements_error_on_the_wire_instead_of_being_dropped() {
        let handle = Server::bind("127.0.0.1:0", ServerConfig::default().workers(1))
            .expect("bind")
            .spawn()
            .expect("spawn");
        let mut client = Client::connect(handle.addr()).expect("client connects");
        let err = client
            .run_qasm(
                "OPENQASM 2.0;\nqreg q[1];\nu3(0.1, 0.2, 0.3) q[0];\n",
                RunOptions::default(),
            )
            .expect_err("unsupported statements must be rejected, never skipped");
        match err {
            sliqsim::serve::ClientError::Remote { code, message } => {
                assert_eq!(code, sliqsim::serve::codes::PARSE);
                assert!(
                    message.contains("line 3"),
                    "parse errors carry position: {message}"
                );
            }
            other => panic!("expected a parse rejection, got {other}"),
        }
        handle.shutdown();
    }
}
