//! Graceful degradation under the byte budget: exceeding
//! `SessionConfig::max_bytes` mid-circuit must surface as
//! `ExecError::CapacityExceeded` while the session stays fully queryable,
//! pre-limit snapshots stay restorable, and lifting the limit afterwards
//! lets the same session keep working.

use sliqsim::exec::CapacityResource;
use sliqsim::prelude::*;
use sliqsim::workloads::random;

/// A Clifford+T workload big enough to blow a small byte budget.
fn heavy_circuit(qubits: usize) -> Circuit {
    random::random_clifford_t(qubits, 7)
}

fn bitslice_config() -> SessionConfig {
    SessionConfig::with_backend(BackendKind::BitSlice)
}

#[test]
fn capacity_exceeded_leaves_the_session_queryable() {
    let circuit = heavy_circuit(16);
    // Small enough that the kernel's baseline footprint (subtables + op
    // caches) already exceeds it: the first gate boundary trips.
    let mut session =
        Session::new(16, bitslice_config().max_bytes(64 * 1024)).expect("session opens");
    let err = session.run(&circuit).expect_err("budget must trip");
    match err {
        ExecError::CapacityExceeded {
            backend,
            resource: CapacityResource::Bytes { used, limit },
        } => {
            assert_eq!(backend, "bitslice");
            assert!(used > limit, "used {used} must exceed limit {limit}");
            assert_eq!(limit, 64 * 1024);
        }
        other => panic!("expected a byte CapacityExceeded, got {other:?}"),
    }
    // The partially-advanced state answers every query: probabilities are
    // well-formed and the stats reflect a live kernel.
    for q in 0..16 {
        let p = session.probability_of_one(q);
        assert!((0.0..=1.0 + 1e-12).contains(&p), "qubit {q}: {p}");
    }
    let total = session.total_probability();
    assert!(
        (total - 1.0).abs() < 1e-9,
        "state stays normalised: {total}"
    );
    let stats = session.stats();
    assert!(stats.live_nodes.unwrap() > 0);
    assert!(stats.memory_mib > 0.0);
    // Sampling still works on the partial state.
    let sample = session.sample(64, 11).expect("sampling survives");
    assert_eq!(sample.histogram.shots(), 64);
}

#[test]
fn restore_to_a_pre_limit_snapshot_works_after_capacity_exceeded() {
    let circuit = heavy_circuit(16);
    let prefix = 8;
    // Probe pass (no budget): find the footprint at the prefix boundary and
    // the largest later gate-boundary footprint, then pick a budget between
    // the two — the prefix is guaranteed to fit and a later boundary is
    // guaranteed to trip, independent of machine and kernel tuning.
    let (prefix_bytes, later_max) = {
        let mut probe = Session::new(16, bitslice_config()).expect("probe opens");
        for gate in circuit.iter().take(prefix) {
            probe.apply_gate(gate).expect("no budget configured");
        }
        let prefix_bytes = probe.stats().bdd.expect("bitslice").current_bytes;
        let mut later_max = 0usize;
        for gate in circuit.iter().skip(prefix) {
            probe.apply_gate(gate).expect("no budget configured");
            later_max = later_max.max(probe.stats().bdd.expect("bitslice").current_bytes);
        }
        (prefix_bytes, later_max)
    };
    assert!(
        later_max > prefix_bytes,
        "workload must keep growing past the prefix ({prefix_bytes} -> {later_max})"
    );
    let budget = prefix_bytes + (later_max - prefix_bytes) / 2;
    let mut session = Session::new(16, bitslice_config().max_bytes(budget)).expect("session opens");
    // Advance the same prefix by streaming, then checkpoint.
    for gate in circuit.iter().take(prefix) {
        session.apply_gate(gate).expect("prefix fits the budget");
    }
    let checkpoint = session.snapshot();
    let p_before = session.probability_of_one(0);
    // Stream the rest until the budget trips (guaranteed by construction:
    // some later gate boundary sits above the chosen budget).
    let mut tripped = false;
    for gate in circuit.iter().skip(prefix) {
        match session.apply_gate(gate) {
            Ok(()) => {}
            Err(ExecError::CapacityExceeded { .. }) => {
                tripped = true;
                break;
            }
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    assert!(tripped, "the byte budget must trip mid-circuit");
    // The pre-limit snapshot restores and reproduces its state exactly.
    session.restore(&checkpoint).expect("own snapshot restores");
    let p_after = session.probability_of_one(0);
    assert_eq!(p_before.to_bits(), p_after.to_bits(), "bit-identical state");
    assert!((session.total_probability() - 1.0).abs() < 1e-9);
    session.discard(checkpoint).expect("own snapshot discards");
}

#[test]
fn dense_over_budget_is_refused_at_admission() {
    // 20 dense qubits project to exactly 16 MiB of amplitudes.
    let err = match Session::new(
        20,
        SessionConfig::with_backend(BackendKind::Dense).max_bytes(1024 * 1024),
    ) {
        Err(err) => err,
        Ok(_) => panic!("projected footprint exceeds the budget"),
    };
    assert!(matches!(
        err,
        ExecError::CapacityExceeded {
            backend: "dense",
            resource: CapacityResource::Bytes { .. },
        }
    ));
    // With the budget lifted the same request is admitted.
    assert!(Session::new(20, SessionConfig::with_backend(BackendKind::Dense)).is_ok());
}

#[test]
fn unlimited_budget_changes_nothing() {
    let circuit = heavy_circuit(12);
    let mut limited = Session::new(12, bitslice_config().max_bytes(1 << 30)).expect("opens");
    let mut unlimited = Session::new(12, bitslice_config()).expect("opens");
    limited.run(&circuit).expect("1 GiB is plenty");
    unlimited.run(&circuit).expect("no limit");
    for q in 0..12 {
        assert_eq!(
            limited.probability_of_one(q).to_bits(),
            unlimited.probability_of_one(q).to_bits(),
            "budget accounting must not perturb results (qubit {q})"
        );
    }
}
